package passes

import (
	"memtx/internal/til"
	"memtx/internal/til/cfgutil"
)

// DCE removes dead *pure* instructions: constants, arithmetic, moves, and
// reference tests whose results are never used. Memory operations, barriers,
// allocations, and calls are never removed — loads and opens carry
// transactional meaning (conflict footprint) beyond their value, and calls
// may have effects.
//
// It is a supporting cleanup for the barrier passes: upgrading and CSE can
// strand address computations that naive instrumentation needed. Liveness is
// a backward may-analysis over registers.
//
// Returns the number of instructions removed.
func DCE(f *til.Func) int {
	c := cfgutil.New(f)
	n := len(f.Blocks)

	liveIn := make([][]bool, n)
	liveOut := make([][]bool, n)
	for _, b := range c.RPO {
		liveIn[b] = make([]bool, f.NRegs)
		liveOut[b] = make([]bool, f.NRegs)
	}

	transfer := func(b int, out []bool) []bool {
		live := append([]bool(nil), out...)
		instrs := f.Blocks[b].Instrs
		for i := len(instrs) - 1; i >= 0; i-- {
			in := &instrs[i]
			if d := in.Defs(); d >= 0 {
				live[d] = false
			}
			for _, u := range in.Uses(nil) {
				live[u] = true
			}
		}
		return live
	}

	for changed := true; changed; {
		changed = false
		for i := len(c.RPO) - 1; i >= 0; i-- {
			b := c.RPO[i]
			for r := 0; r < f.NRegs; r++ {
				v := false
				for _, s := range c.Succs[b] {
					if liveIn[s][r] {
						v = true
						break
					}
				}
				liveOut[b][r] = v
			}
			ni := transfer(b, liveOut[b])
			if !sameBools(liveIn[b], ni) {
				copy(liveIn[b], ni)
				changed = true
			}
		}
	}

	removed := 0
	for _, b := range c.RPO {
		blk := f.Blocks[b]
		live := append([]bool(nil), liveOut[b]...)
		// Walk backwards, deleting dead pure defs; record keep decisions.
		keep := make([]bool, len(blk.Instrs))
		for i := len(blk.Instrs) - 1; i >= 0; i-- {
			in := &blk.Instrs[i]
			d := in.Defs()
			dead := d >= 0 && !live[d] && isPure(in.Op)
			keep[i] = !dead
			if dead {
				removed++
				continue
			}
			if d >= 0 {
				live[d] = false
			}
			for _, u := range in.Uses(nil) {
				live[u] = true
			}
		}
		kept := blk.Instrs[:0]
		for i := range blk.Instrs {
			if keep[i] {
				kept = append(kept, blk.Instrs[i])
			}
		}
		blk.Instrs = kept
	}
	return removed
}

// isPure reports whether the opcode has no effect beyond defining its
// destination register.
func isPure(op til.Op) bool {
	switch op {
	case til.OpConstW, til.OpConstNil, til.OpMov, til.OpBin, til.OpIsNil,
		til.OpRefEq, til.OpGlobal:
		return true
	}
	return false
}
