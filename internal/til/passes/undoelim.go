package passes

import (
	"memtx/internal/til"
	"memtx/internal/til/cfgutil"
)

// undoFact identifies one undo-log operation: the object register, whether
// the field is a reference, and either an immediate index (idxReg == -1) or
// an index register.
type undoFact struct {
	obj    int
	isRef  bool
	immIdx int
	idxReg int
}

// UndoElide removes undo-log operations that are redundant because the same
// (object, field) was already undo-logged on every path — the static
// counterpart of the runtime log filter. Returns the number of instructions
// removed.
func UndoElide(f *til.Func) int {
	c := cfgutil.New(f)

	// Must-availability of undo facts: a set per block entry, met by
	// intersection. Sets are small (bounded by the number of undo ops), so
	// maps are fine.
	n := len(f.Blocks)
	in := make([]map[undoFact]bool, n)
	out := make([]map[undoFact]bool, n)
	computed := make([]bool, n) // out[b] valid; uncomputed = optimistic top

	transferBlock := func(b int, state map[undoFact]bool) map[undoFact]bool {
		for i := range f.Blocks[b].Instrs {
			state = undoTransfer(&f.Blocks[b].Instrs[i], state)
		}
		return state
	}

	for changed := true; changed; {
		changed = false
		for _, b := range c.RPO {
			var cur map[undoFact]bool
			if b == 0 {
				cur = map[undoFact]bool{}
			} else {
				cur = meetFacts(c, out, computed, b)
			}
			in[b] = cur
			next := transferBlock(b, copyFacts(cur))
			if !computed[b] || !sameFacts(out[b], next) {
				out[b] = next
				computed[b] = true
				changed = true
			}
		}
	}

	removed := 0
	for _, b := range c.RPO {
		state := copyFacts(in[b])
		blk := f.Blocks[b]
		kept := blk.Instrs[:0]
		for i := range blk.Instrs {
			ins := blk.Instrs[i]
			if fact, ok := factOf(&ins); ok && state[fact] {
				removed++
				continue
			}
			state = undoTransfer(&ins, state)
			kept = append(kept, ins)
		}
		blk.Instrs = kept
	}
	return removed
}

// factOf returns the undo fact for an undo instruction.
func factOf(in *til.Instr) (undoFact, bool) {
	switch in.Op {
	case til.OpUndoW:
		return undoFact{obj: in.Obj, immIdx: in.Idx, idxReg: -1}, true
	case til.OpUndoR:
		return undoFact{obj: in.Obj, isRef: true, immIdx: in.Idx, idxReg: -1}, true
	case til.OpUndoWI:
		return undoFact{obj: in.Obj, immIdx: -1, idxReg: in.Idx}, true
	case til.OpUndoRI:
		return undoFact{obj: in.Obj, isRef: true, immIdx: -1, idxReg: in.Idx}, true
	}
	return undoFact{}, false
}

// undoTransfer applies one instruction: undo ops generate their fact;
// register definitions kill every fact mentioning the register.
func undoTransfer(in *til.Instr, state map[undoFact]bool) map[undoFact]bool {
	if fact, ok := factOf(in); ok {
		state[fact] = true
		return state
	}
	if d := in.Defs(); d >= 0 {
		for fact := range state {
			if fact.obj == d || fact.idxReg == d {
				delete(state, fact)
			}
		}
	}
	return state
}

// meetFacts intersects predecessor out-sets. Predecessors whose out-set has
// not been computed yet (back edges on the first sweep) are skipped, which is
// the standard optimistic treatment: the fixpoint iteration corrects any
// over-approximation.
func meetFacts(c *cfgutil.CFG, out []map[undoFact]bool, computed []bool, b int) map[undoFact]bool {
	var acc map[undoFact]bool
	for _, p := range c.Preds[b] {
		if !c.Reachable(p) || !computed[p] {
			continue
		}
		if acc == nil {
			acc = copyFacts(out[p])
			continue
		}
		for fact := range acc {
			if !out[p][fact] {
				delete(acc, fact)
			}
		}
	}
	if acc == nil {
		acc = map[undoFact]bool{}
	}
	return acc
}

func copyFacts(s map[undoFact]bool) map[undoFact]bool {
	c := make(map[undoFact]bool, len(s))
	for k := range s {
		c[k] = true
	}
	return c
}

func sameFacts(a, b map[undoFact]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}
