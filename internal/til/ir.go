// Package til defines the Transactional Intermediate Language: a small,
// block-structured register IR with explicit, decomposed STM barrier
// instructions.
//
// TIL plays the role of the paper's compiler intermediate representation.
// Benchmark kernels are written in (or parsed into) bare TIL with plain
// memory operations; the instrumentation pass inserts naive barriers exactly
// as a simple compiler would (one open per access, one undo log per store),
// and the optimization passes in til/passes then remove, strengthen, and
// hoist those barriers using classical dataflow techniques — the paper's
// central claim being that the decomposed interface makes this possible.
//
// The interpreter in til/interp executes TIL modules against any STM engine.
package til

import "fmt"

// Op enumerates TIL instruction opcodes.
type Op uint8

const (
	// OpInvalid is the zero Op; no valid instruction uses it.
	OpInvalid Op = iota

	// Data movement and arithmetic.
	OpConstW   // Dst = Imm
	OpConstNil // Dst = nil reference
	OpMov      // Dst = A
	OpBin      // Dst = A <Bin> B
	OpIsNil    // Dst = (A == nil) ? 1 : 0
	OpRefEq    // Dst = (A == B as references) ? 1 : 0

	// Allocation and roots.
	OpNew    // Dst = new object of Class (transaction-local when inside a txn)
	OpGlobal // Dst = module global object #Idx

	// Memory access. Obj is the object register. For the *I forms the field
	// index is in register Idx; otherwise Idx is an immediate.
	OpLoadW   // Dst = Obj.words[Idx]
	OpLoadWI  // Dst = Obj.words[reg Idx]
	OpStoreW  // Obj.words[Idx] = A
	OpStoreWI // Obj.words[reg Idx] = A
	OpLoadR   // Dst = Obj.refs[Idx]
	OpLoadRI  // Dst = Obj.refs[reg Idx]
	OpStoreR  // Obj.refs[Idx] = A (A == -1 encodes nil)
	OpStoreRI // Obj.refs[reg Idx] = A

	// Decomposed STM barriers (inserted by the instrumentation pass, or
	// written by hand in pre-decomposed code).
	OpOpenR    // open Obj for read
	OpOpenU    // open Obj for update
	OpUndoW    // undo-log Obj.words[Idx]
	OpUndoWI   // undo-log Obj.words[reg Idx]
	OpUndoR    // undo-log Obj.refs[Idx]
	OpUndoRI   // undo-log Obj.refs[reg Idx]
	OpValidate // re-validate the read set; abandons the attempt on conflict

	// Control flow (block terminators, except Call).
	OpCall // Dst? = Callee(Args...)
	OpJmp  // jump to Then
	OpBr   // if A != 0 jump Then else Else
	OpRet  // return A (A == -1: no value)
)

// BinKind enumerates binary ALU operations. Comparisons yield 0 or 1.
type BinKind uint8

const (
	BinAdd BinKind = iota
	BinSub
	BinMul
	BinDiv // division by zero traps (interpreter error)
	BinMod
	BinAnd
	BinOr
	BinXor
	BinShl
	BinShr
	BinLt
	BinLe
	BinEq
	BinNe
	BinGt
	BinGe
)

var binNames = [...]string{
	BinAdd: "add", BinSub: "sub", BinMul: "mul", BinDiv: "div", BinMod: "mod",
	BinAnd: "and", BinOr: "or", BinXor: "xor", BinShl: "shl", BinShr: "shr",
	BinLt: "lt", BinLe: "le", BinEq: "eq", BinNe: "ne", BinGt: "gt", BinGe: "ge",
}

// String returns the assembler mnemonic for the operation.
func (b BinKind) String() string {
	if int(b) < len(binNames) {
		return binNames[b]
	}
	return fmt.Sprintf("bin(%d)", uint8(b))
}

// BinKindByName maps mnemonics to BinKinds; ok is false for unknown names.
func BinKindByName(s string) (BinKind, bool) {
	for k, n := range binNames {
		if n == s {
			return BinKind(k), true
		}
	}
	return 0, false
}

// Instr is one TIL instruction. Register operands are indices into the
// enclosing function's register file; -1 means "absent".
type Instr struct {
	Op     Op
	Bin    BinKind
	Dst    int    // destination register, or -1
	A, B   int    // general operands
	Obj    int    // object register for memory/barrier ops
	Idx    int    // immediate field index, or index register for *I forms
	Imm    uint64 // immediate for OpConstW
	Class  int    // class index for OpNew
	Callee int    // function index for OpCall
	Args   []int  // argument registers for OpCall
	Then   int    // target block (Jmp, Br)
	Else   int    // false target block (Br)
}

// IsTerminator reports whether the instruction ends a basic block.
func (in *Instr) IsTerminator() bool {
	switch in.Op {
	case OpJmp, OpBr, OpRet:
		return true
	}
	return false
}

// IsBarrier reports whether the instruction is a decomposed STM barrier.
func (in *Instr) IsBarrier() bool {
	switch in.Op {
	case OpOpenR, OpOpenU, OpUndoW, OpUndoWI, OpUndoR, OpUndoRI:
		return true
	}
	return false
}

// IsMemAccess reports whether the instruction reads or writes object fields.
func (in *Instr) IsMemAccess() bool {
	switch in.Op {
	case OpLoadW, OpLoadWI, OpStoreW, OpStoreWI, OpLoadR, OpLoadRI, OpStoreR, OpStoreRI:
		return true
	}
	return false
}

// IsStore reports whether the instruction writes an object field.
func (in *Instr) IsStore() bool {
	switch in.Op {
	case OpStoreW, OpStoreWI, OpStoreR, OpStoreRI:
		return true
	}
	return false
}

// Defs returns the register defined by the instruction, or -1.
func (in *Instr) Defs() int {
	switch in.Op {
	case OpConstW, OpConstNil, OpMov, OpBin, OpIsNil, OpRefEq, OpNew, OpGlobal,
		OpLoadW, OpLoadWI, OpLoadR, OpLoadRI:
		return in.Dst
	case OpCall:
		return in.Dst // may be -1
	}
	return -1
}

// Uses appends the registers the instruction reads to buf and returns it.
func (in *Instr) Uses(buf []int) []int {
	add := func(r int) {
		if r >= 0 {
			buf = append(buf, r)
		}
	}
	switch in.Op {
	case OpMov, OpIsNil:
		add(in.A)
	case OpBin, OpRefEq:
		add(in.A)
		add(in.B)
	case OpLoadW, OpLoadR:
		add(in.Obj)
	case OpLoadWI, OpLoadRI:
		add(in.Obj)
		add(in.Idx)
	case OpStoreW, OpStoreR:
		add(in.Obj)
		add(in.A)
	case OpStoreWI, OpStoreRI:
		add(in.Obj)
		add(in.Idx)
		add(in.A)
	case OpOpenR, OpOpenU, OpUndoW, OpUndoR:
		add(in.Obj)
	case OpUndoWI, OpUndoRI:
		add(in.Obj)
		add(in.Idx)
	case OpBr, OpRet:
		add(in.A)
	case OpCall:
		for _, a := range in.Args {
			add(a)
		}
	}
	return buf
}

// Class describes an object layout: a fixed number of scalar words and
// reference fields. ImmutableWords marks word fields that are never written
// after construction; RefClasses optionally gives the static class of each
// reference field (-1 when unknown), enabling class inference for the
// immutability optimization.
type Class struct {
	Name           string
	NWords, NRefs  int
	ImmutableWords []bool // len NWords; nil means none immutable
	RefClasses     []int  // len NRefs; class index or -1
}

// Global is a module-level root object, allocated at module load.
type Global struct {
	Name  string
	Class int
}

// Block is a basic block: a label and a straight-line instruction sequence
// ending in a terminator.
type Block struct {
	Name   string
	Instrs []Instr
}

// Terminator returns the block's final instruction.
func (b *Block) Terminator() *Instr { return &b.Instrs[len(b.Instrs)-1] }

// Func is a TIL function. Registers are function-local; the first NParams
// registers receive the arguments. Atomic functions execute as one
// transaction when invoked outside of any transaction, and are flattened
// into the caller's transaction otherwise.
type Func struct {
	Name     string
	Atomic   bool
	NParams  int
	NRegs    int
	RegNames []string // len NRegs, for printing
	Blocks   []*Block

	// Instrumented links a bare function to its transactional clone (set by
	// the instrumentation pass); -1 if none.
	Instrumented int
	// ReadOnly marks instrumented functions proven to perform no updates
	// (set by the readonly pass).
	ReadOnly bool
}

// Module is a complete TIL program.
type Module struct {
	Name    string
	Classes []Class
	Globals []Global
	Funcs   []*Func

	classIdx map[string]int
	funcIdx  map[string]int
}

// NewModule returns an empty module.
func NewModule(name string) *Module {
	return &Module{
		Name:     name,
		classIdx: map[string]int{},
		funcIdx:  map[string]int{},
	}
}

// AddClass appends a class and returns its index. Duplicate names are an
// error surfaced at Verify time; the latest index wins in lookups.
func (m *Module) AddClass(c Class) int {
	m.Classes = append(m.Classes, c)
	i := len(m.Classes) - 1
	m.classIdx[c.Name] = i
	return i
}

// AddGlobal appends a global root object of the given class index.
func (m *Module) AddGlobal(name string, class int) int {
	m.Globals = append(m.Globals, Global{Name: name, Class: class})
	return len(m.Globals) - 1
}

// AddFunc appends a function and returns its index.
func (m *Module) AddFunc(f *Func) int {
	if f.Instrumented == 0 {
		f.Instrumented = -1
	}
	m.Funcs = append(m.Funcs, f)
	i := len(m.Funcs) - 1
	m.funcIdx[f.Name] = i
	return i
}

// ClassByName returns the index of the named class, or -1.
func (m *Module) ClassByName(name string) int {
	if i, ok := m.classIdx[name]; ok {
		return i
	}
	return -1
}

// FuncByName returns the index of the named function, or -1.
func (m *Module) FuncByName(name string) int {
	if i, ok := m.funcIdx[name]; ok {
		return i
	}
	return -1
}

// GlobalByName returns the index of the named global, or -1.
func (m *Module) GlobalByName(name string) int {
	for i := range m.Globals {
		if m.Globals[i].Name == name {
			return i
		}
	}
	return -1
}
