// Package difftest cross-checks the STM engines against each other and
// against the uninstrumented baseline by running generated TIL programs
// (tilgen) through the full optimization pipeline on every engine and
// comparing both the program's output and a canonical fingerprint of the
// final reachable heap. A divergence means an engine (or a pass) changed the
// program's observable behaviour.
package difftest

import (
	"fmt"
	"hash/fnv"

	"memtx/internal/engine"
	"memtx/internal/til"
	"memtx/internal/til/interp"
)

// maxObjects bounds a fingerprint traversal; generated programs allocate far
// less, so hitting it indicates a corrupted heap (e.g. a reference cycle that
// the acyclic generator cannot produce).
const maxObjects = 1 << 20

// Fingerprint hashes the heap reachable from the program's globals into one
// canonical value. Traversal is a breadth-first walk in global order then
// reference-field order, using the module's class layouts; object identity is
// encoded as first-visit order, so two heaps fingerprint equal iff they have
// the same shape and the same scalar contents — independent of the engine
// that built them. The walk runs inside one read-only transaction.
func Fingerprint(p *interp.Program, m *til.Module, e engine.Engine) (uint64, error) {
	h := fnv.New64a()
	word := func(v uint64) {
		var b [8]byte
		for i := 0; i < 8; i++ {
			b[i] = byte(v >> (8 * i))
		}
		_, _ = h.Write(b[:])
	}

	err := engine.RunReadOnly(e, func(tx engine.Txn) error {
		type item struct {
			h     engine.Handle
			class int
		}
		ids := map[engine.Handle]uint64{}
		var queue []item
		enqueue := func(oh engine.Handle, class int) uint64 {
			if id, ok := ids[oh]; ok {
				return id
			}
			id := uint64(len(ids) + 1)
			ids[oh] = id
			queue = append(queue, item{oh, class})
			return id
		}
		for gi, g := range m.Globals {
			word(uint64(gi))
			word(enqueue(p.Globals[gi], g.Class))
		}
		for len(queue) > 0 {
			it := queue[0]
			queue = queue[1:]
			if len(ids) > maxObjects {
				return fmt.Errorf("difftest: heap exceeds %d objects", maxObjects)
			}
			c := &m.Classes[it.class]
			word(uint64(it.class))
			tx.OpenForRead(it.h)
			for i := 0; i < c.NWords; i++ {
				word(tx.LoadWord(it.h, i))
			}
			for i := 0; i < c.NRefs; i++ {
				r := tx.LoadRef(it.h, i)
				if r == nil {
					word(0)
					continue
				}
				rc := -1
				if i < len(c.RefClasses) {
					rc = c.RefClasses[i]
				}
				if rc < 0 {
					return fmt.Errorf("difftest: class %s ref %d has unknown class; cannot traverse", c.Name, i)
				}
				word(enqueue(r, rc))
			}
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	return h.Sum64(), nil
}
