package difftest

import (
	"testing"

	"memtx/internal/core"
	"memtx/internal/engine"
	"memtx/internal/ostm"
	"memtx/internal/rawengine"
	"memtx/internal/til/interp"
	"memtx/internal/til/passes"
	"memtx/internal/til/tilgen"
	"memtx/internal/wstm"
)

// fullSeeds is the fuzzing budget of the differential suite: CI runs the full
// count (the acceptance bar is >= 100 generated programs); -short trims it
// for the race leg and local smoke runs.
const fullSeeds = 120
const shortSeeds = 25

// execute compiles a fresh copy of generated program `seed` at `level`, runs
// main(n) on e, and returns the program output plus the final-heap
// fingerprint.
func execute(t *testing.T, seed uint64, level passes.Level, e engine.Engine, n uint64) (uint64, uint64) {
	t.Helper()
	m := tilgen.Module(seed)
	if _, err := passes.Apply(m, level); err != nil {
		t.Fatalf("seed %d: passes(%s): %v", seed, level, err)
	}
	p, err := interp.Load(m, e)
	if err != nil {
		t.Fatalf("seed %d: load: %v", seed, err)
	}
	out, err := p.NewMachine().Call("main", interp.Word(n))
	if err != nil {
		t.Fatalf("seed %d at %s on %s: %v", seed, level, e.Name(), err)
	}
	fp, err := Fingerprint(p, m, e)
	if err != nil {
		t.Fatalf("seed %d on %s: fingerprint: %v", seed, e.Name(), err)
	}
	return out.W, fp
}

// TestCrossEngineDifferential is the observability PR's end-to-end soundness
// net: for every generated program, the full pass pipeline on each STM engine
// must produce the same program output AND the same final reachable heap as
// the unoptimized program on the uninstrumented interpreter baseline.
func TestCrossEngineDifferential(t *testing.T) {
	seeds := uint64(fullSeeds)
	if testing.Short() {
		seeds = shortSeeds
	}
	candidates := []struct {
		name string
		mk   func() engine.Engine
	}{
		{"direct", func() engine.Engine { return core.New() }},
		{"direct-nofilter", func() engine.Engine { return core.New(core.WithFilterSize(0)) }},
		{"wstm", func() engine.Engine { return wstm.New() }},
		{"ostm", func() engine.Engine { return ostm.New() }},
	}
	for seed := uint64(1); seed <= seeds; seed++ {
		wantOut, wantFP := execute(t, seed, passes.LevelNaive, rawengine.New(), 5)
		for _, c := range candidates {
			gotOut, gotFP := execute(t, seed, passes.LevelFull, c.mk(), 5)
			if gotOut != wantOut {
				t.Fatalf("seed %d: %s output = %d, want %d", seed, c.name, gotOut, wantOut)
			}
			if gotFP != wantFP {
				t.Fatalf("seed %d: %s final heap diverged from baseline (fp %x vs %x)",
					seed, c.name, gotFP, wantFP)
			}
		}
	}
}

// TestFingerprintDetectsDifferences guards the oracle itself: the fingerprint
// must be stable across engines for the same program, and must actually
// change when the heap changes — otherwise the differential test proves
// nothing.
func TestFingerprintDetectsDifferences(t *testing.T) {
	const seed = 3
	_, fpA := execute(t, seed, passes.LevelFull, core.New(), 5)
	_, fpB := execute(t, seed, passes.LevelFull, wstm.New(), 5)
	if fpA != fpB {
		t.Fatalf("same program fingerprinted differently: %x vs %x", fpA, fpB)
	}
	// Mutating one word of the final heap must change the fingerprint.
	e := core.New()
	m := tilgen.Module(seed)
	if _, err := passes.Apply(m, passes.LevelFull); err != nil {
		t.Fatal(err)
	}
	p, err := interp.Load(m, e)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.NewMachine().Call("main", interp.Word(5)); err != nil {
		t.Fatal(err)
	}
	before, err := Fingerprint(p, m, e)
	if err != nil {
		t.Fatal(err)
	}
	if err := engine.Run(e, func(tx engine.Txn) error {
		g := p.Globals[0]
		tx.OpenForUpdate(g)
		tx.LogForUndoWord(g, 0)
		tx.StoreWord(g, 0, tx.LoadWord(g, 0)+0xDEAD)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	after, err := Fingerprint(p, m, e)
	if err != nil {
		t.Fatal(err)
	}
	if before == after {
		t.Fatal("heap mutation did not change the fingerprint")
	}
}
