// Package interp executes TIL modules against any STM engine.
//
// A Program binds a module to an engine and allocates the module's globals;
// Machines are per-goroutine executors sharing the Program, so concurrent
// workloads run one Machine per worker thread against the same heap.
//
// Transaction semantics mirror the paper's runtime:
//
//   - calling an atomic function outside a transaction starts one, executing
//     the function's instrumented clone (when the module has been through
//     passes.Instrument) and re-executing on conflict;
//   - calling an atomic function inside a transaction is flattened;
//   - read-only atomic functions (passes.MarkReadOnly) use the engine's
//     read-only protocol;
//   - the interpreter is zombie-tolerant: because the direct-update engine
//     is not opaque, a doomed transaction may read inconsistent data and
//     fault or loop; faults trigger validation-then-retry, and a step
//     watchdog validates periodically inside long transactions.
//
// Barrier instructions on nil references are no-ops (so speculative code
// motion is always safe); data accesses through nil are faults.
package interp

import (
	"errors"
	"fmt"

	"memtx/internal/engine"
	"memtx/internal/til"
)

// Value is a TIL runtime value: a machine word or an object reference.
type Value struct {
	W     uint64
	R     engine.Handle
	IsRef bool
}

// Word returns a scalar value.
func Word(w uint64) Value { return Value{W: w} }

// Ref returns a reference value (h may be nil).
func Ref(h engine.Handle) Value { return Value{R: h, IsRef: true} }

// Stats counts dynamically executed operations across a Machine's lifetime.
type Stats struct {
	Steps        uint64
	OpensR       uint64
	OpensU       uint64
	Undos        uint64
	Loads        uint64
	Stores       uint64
	Allocs       uint64
	Calls        uint64
	Txns         uint64 // top-level transactions started (incl. retries)
	ImplicitTxns uint64 // single-op transactions for non-atomic memory access
}

// Program is a module loaded against an engine, with globals allocated.
type Program struct {
	Mod     *til.Module
	Eng     engine.Engine
	Globals []engine.Handle
}

// Load allocates the module's globals on the engine and returns a Program.
func Load(m *til.Module, e engine.Engine) (*Program, error) {
	if err := til.Verify(m); err != nil {
		return nil, err
	}
	p := &Program{Mod: m, Eng: e}
	for _, g := range m.Globals {
		c := &m.Classes[g.Class]
		p.Globals = append(p.Globals, e.NewObj(c.NWords, c.NRefs))
	}
	return p, nil
}

// Machine executes functions of one Program. Not safe for concurrent use;
// create one Machine per goroutine.
type Machine struct {
	prog *Program
	tx   engine.Txn

	// ValidateEvery is the number of interpreted steps between automatic
	// mid-transaction validations (zombie containment). <= 0 disables.
	ValidateEvery int
	// MaxSteps bounds the steps of a single transaction attempt; exceeding
	// it is reported as an error. <= 0 means the default of 1<<30.
	MaxSteps int
	// MaxDepth bounds call recursion.
	MaxDepth int

	Stats Stats

	stepsInTxn int
	depth      int
}

// NewMachine returns an executor for the program.
func (p *Program) NewMachine() *Machine {
	return &Machine{prog: p, ValidateEvery: 50_000, MaxSteps: 1 << 30, MaxDepth: 4096}
}

// trap is an interpreter fault (nil dereference, bad index, division by
// zero...). Inside a transaction a trap may be a zombie artifact and
// triggers validation; outside it is a program error.
type trap struct {
	msg string
}

func (t *trap) Error() string { return "til: trap: " + t.msg }

// Call invokes the named function. Atomic functions are wrapped in a
// transaction (with retry); plain functions execute directly, and any memory
// operations they perform run as implicit single-operation transactions.
func (m *Machine) Call(name string, args ...Value) (Value, error) {
	fi := m.prog.Mod.FuncByName(name)
	if fi < 0 {
		return Value{}, fmt.Errorf("til: no function %q", name)
	}
	return m.CallIndex(fi, args...)
}

// CallIndex is Call by function index.
func (m *Machine) CallIndex(fi int, args ...Value) (ret Value, err error) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if t, ok := r.(*trap); ok {
			ret, err = Value{}, t
			return
		}
		panic(r)
	}()
	return m.call(fi, args), nil
}

// call dispatches one function invocation, handling transaction entry.
func (m *Machine) call(fi int, args []Value) Value {
	f := m.prog.Mod.Funcs[fi]
	if len(args) != f.NParams {
		panic(&trap{fmt.Sprintf("call %s: %d args, want %d", f.Name, len(args), f.NParams)})
	}
	if !f.Atomic || m.tx != nil {
		return m.exec(f, args)
	}

	// Transaction entry: run the instrumented clone when one exists.
	target := f
	if f.Instrumented >= 0 {
		target = m.prog.Mod.Funcs[f.Instrumented]
	}
	var ret Value
	body := func(tx engine.Txn) error {
		m.tx = tx
		m.stepsInTxn = 0
		m.Stats.Txns++
		defer func() { m.tx = nil }()
		ret = m.exec(target, args)
		return nil
	}
	var err error
	if target.ReadOnly {
		err = engine.RunReadOnly(m.prog.Eng, body)
	} else {
		err = engine.Run(m.prog.Eng, body)
	}
	if err != nil {
		// engine.Run only returns the body's error, and our body returns nil;
		// anything else is a bug.
		panic(&trap{fmt.Sprintf("transaction %s: %v", f.Name, err)})
	}
	return ret
}

// fault raises a trap; inside a transaction it first validates, converting
// zombie-induced faults into retries.
func (m *Machine) fault(format string, args ...any) {
	if m.tx != nil {
		if m.tx.Validate() != nil {
			engine.AbandonCause(engine.CauseValidation, "fault in doomed transaction")
		}
	}
	panic(&trap{fmt.Sprintf(format, args...)})
}

// tick advances the step counters and runs the zombie watchdog.
func (m *Machine) tick() {
	m.Stats.Steps++
	if m.tx == nil {
		return
	}
	m.stepsInTxn++
	if m.ValidateEvery > 0 && m.stepsInTxn%m.ValidateEvery == 0 {
		if m.tx.Validate() != nil {
			engine.AbandonCause(engine.CauseValidation, "watchdog validation failed")
		}
	}
	max := m.MaxSteps
	if max <= 0 {
		max = 1 << 30
	}
	if m.stepsInTxn > max {
		m.fault("transaction exceeded %d steps", max)
	}
}

// withTxn runs op inside the current transaction, or an implicit one-shot
// transaction when outside (non-atomic code touching shared memory).
func (m *Machine) withTxn(op func(tx engine.Txn)) {
	if m.tx != nil {
		op(m.tx)
		return
	}
	m.Stats.ImplicitTxns++
	if err := engine.Run(m.prog.Eng, func(tx engine.Txn) error {
		op(tx)
		return nil
	}); err != nil {
		m.fault("implicit transaction: %v", err)
	}
}

// exec interprets one function body.
func (m *Machine) exec(f *til.Func, args []Value) Value {
	if m.depth++; m.depth > m.maxDepth() {
		m.depth--
		m.fault("call depth exceeded in %s", f.Name)
	}
	defer func() { m.depth-- }()

	regs := make([]Value, f.NRegs)
	copy(regs, args)

	ref := func(r int) engine.Handle {
		if r < 0 {
			return nil
		}
		return regs[r].R
	}
	mustObj := func(r int, what string) engine.Handle {
		h := regs[r].R
		if h == nil {
			m.fault("%s: nil reference in %s (reg %s)", what, f.Name, f.RegNames[r])
		}
		return h
	}

	bi := 0
	for {
		blk := f.Blocks[bi]
		next := -1
	instrs:
		for ii := 0; ii < len(blk.Instrs); ii++ {
			in := &blk.Instrs[ii]
			m.tick()
			switch in.Op {
			case til.OpConstW:
				regs[in.Dst] = Word(in.Imm)
			case til.OpConstNil:
				regs[in.Dst] = Ref(nil)
			case til.OpMov:
				regs[in.Dst] = regs[in.A]
			case til.OpBin:
				regs[in.Dst] = Word(m.binop(in.Bin, regs[in.A].W, regs[in.B].W))
			case til.OpIsNil:
				regs[in.Dst] = Word(b2w(regs[in.A].R == nil))
			case til.OpRefEq:
				regs[in.Dst] = Word(b2w(regs[in.A].R == regs[in.B].R))
			case til.OpNew:
				c := &m.prog.Mod.Classes[in.Class]
				m.Stats.Allocs++
				if m.tx != nil {
					regs[in.Dst] = Ref(m.tx.Alloc(c.NWords, c.NRefs))
				} else {
					regs[in.Dst] = Ref(m.prog.Eng.NewObj(c.NWords, c.NRefs))
				}
			case til.OpGlobal:
				regs[in.Dst] = Ref(m.prog.Globals[in.Idx])

			case til.OpLoadW:
				m.loadW(regs, in, in.Idx, mustObj(in.Obj, "loadw"))
			case til.OpLoadWI:
				m.loadW(regs, in, int(regs[in.Idx].W), mustObj(in.Obj, "loadw"))
			case til.OpStoreW:
				m.storeW(regs, in, in.Idx, mustObj(in.Obj, "storew"))
			case til.OpStoreWI:
				m.storeW(regs, in, int(regs[in.Idx].W), mustObj(in.Obj, "storew"))
			case til.OpLoadR:
				m.loadR(regs, in, in.Idx, mustObj(in.Obj, "loadr"))
			case til.OpLoadRI:
				m.loadR(regs, in, int(regs[in.Idx].W), mustObj(in.Obj, "loadr"))
			case til.OpStoreR:
				m.storeR(regs, in, in.Idx, mustObj(in.Obj, "storer"))
			case til.OpStoreRI:
				m.storeR(regs, in, int(regs[in.Idx].W), mustObj(in.Obj, "storer"))

			case til.OpOpenR:
				if h := ref(in.Obj); h != nil {
					m.Stats.OpensR++
					m.withTxn(func(tx engine.Txn) { tx.OpenForRead(h) })
				}
			case til.OpOpenU:
				if h := ref(in.Obj); h != nil {
					m.Stats.OpensU++
					m.withTxn(func(tx engine.Txn) { tx.OpenForUpdate(h) })
				}
			case til.OpUndoW:
				m.undo(regs, in, in.Idx, false)
			case til.OpUndoWI:
				m.undo(regs, in, int(regs[in.Idx].W), false)
			case til.OpUndoR:
				m.undo(regs, in, in.Idx, true)
			case til.OpUndoRI:
				m.undo(regs, in, int(regs[in.Idx].W), true)
			case til.OpValidate:
				if m.tx != nil {
					if m.tx.Validate() != nil {
						engine.AbandonCause(engine.CauseValidation, "explicit validate failed")
					}
				}

			case til.OpCall:
				m.Stats.Calls++
				callArgs := make([]Value, len(in.Args))
				for i, a := range in.Args {
					callArgs[i] = regs[a]
				}
				r := m.call(in.Callee, callArgs)
				if in.Dst >= 0 {
					regs[in.Dst] = r
				}

			case til.OpJmp:
				next = in.Then
				break instrs
			case til.OpBr:
				if regs[in.A].W != 0 {
					next = in.Then
				} else {
					next = in.Else
				}
				break instrs
			case til.OpRet:
				if in.A >= 0 {
					return regs[in.A]
				}
				return Value{}
			default:
				m.fault("invalid opcode %d in %s", in.Op, f.Name)
			}
		}
		if next < 0 {
			m.fault("block %s fell through in %s", blk.Name, f.Name)
		}
		bi = next
	}
}

func (m *Machine) maxDepth() int {
	if m.MaxDepth <= 0 {
		return 4096
	}
	return m.MaxDepth
}

// guardIdx converts engine slice-bounds panics into interpreter faults (which
// validate first, so zombie-computed indices retry instead of crashing).
func (m *Machine) guardIdx(what string, op func()) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if _, ok := r.(*engine.Retry); ok {
			panic(r)
		}
		if _, ok := r.(*trap); ok {
			panic(r)
		}
		m.fault("%s: %v", what, r)
	}()
	op()
}

func (m *Machine) loadW(regs []Value, in *til.Instr, idx int, h engine.Handle) {
	m.Stats.Loads++
	m.guardIdx("loadw", func() {
		m.withTxn(func(tx engine.Txn) { regs[in.Dst] = Word(tx.LoadWord(h, idx)) })
	})
}

func (m *Machine) storeW(regs []Value, in *til.Instr, idx int, h engine.Handle) {
	m.Stats.Stores++
	m.guardIdx("storew", func() {
		m.withTxn(func(tx engine.Txn) { tx.StoreWord(h, idx, regs[in.A].W) })
	})
}

func (m *Machine) loadR(regs []Value, in *til.Instr, idx int, h engine.Handle) {
	m.Stats.Loads++
	m.guardIdx("loadr", func() {
		m.withTxn(func(tx engine.Txn) { regs[in.Dst] = Ref(tx.LoadRef(h, idx)) })
	})
}

func (m *Machine) storeR(regs []Value, in *til.Instr, idx int, h engine.Handle) {
	m.Stats.Stores++
	m.guardIdx("storer", func() {
		var src engine.Handle
		if in.A >= 0 {
			src = regs[in.A].R
		}
		m.withTxn(func(tx engine.Txn) { tx.StoreRef(h, idx, src) })
	})
}

func (m *Machine) undo(regs []Value, in *til.Instr, idx int, isRef bool) {
	h := regs[in.Obj].R
	if h == nil {
		return // barrier on nil is a no-op (speculative motion safety)
	}
	m.Stats.Undos++
	m.guardIdx("undo", func() {
		m.withTxn(func(tx engine.Txn) {
			if isRef {
				tx.LogForUndoRef(h, idx)
			} else {
				tx.LogForUndoWord(h, idx)
			}
		})
	})
}

func (m *Machine) binop(k til.BinKind, a, b uint64) uint64 {
	switch k {
	case til.BinAdd:
		return a + b
	case til.BinSub:
		return a - b
	case til.BinMul:
		return a * b
	case til.BinDiv:
		if b == 0 {
			m.fault("division by zero")
		}
		return a / b
	case til.BinMod:
		if b == 0 {
			m.fault("modulo by zero")
		}
		return a % b
	case til.BinAnd:
		return a & b
	case til.BinOr:
		return a | b
	case til.BinXor:
		return a ^ b
	case til.BinShl:
		return a << (b & 63)
	case til.BinShr:
		return a >> (b & 63)
	case til.BinLt:
		return b2w(a < b)
	case til.BinLe:
		return b2w(a <= b)
	case til.BinEq:
		return b2w(a == b)
	case til.BinNe:
		return b2w(a != b)
	case til.BinGt:
		return b2w(a > b)
	case til.BinGe:
		return b2w(a >= b)
	}
	m.fault("invalid binop %d", k)
	return 0
}

func b2w(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// IsTrap reports whether err is an interpreter fault.
func IsTrap(err error) bool {
	var t *trap
	return errors.As(err, &t)
}
