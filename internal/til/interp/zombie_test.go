package interp

import (
	"sync"
	"testing"

	"memtx/internal/core"
	"memtx/internal/til"
	"memtx/internal/til/parser"
	"memtx/internal/til/passes"
)

// zombieSrc builds a two-node cyclic-prone structure: a reader walks a chain
// whose links a writer keeps swapping. Under the non-opaque direct engine a
// doomed reader can observe a cycle (n1 -> n2 -> n1) and would loop forever
// without the interpreter's validation watchdog.
const zombieSrc = `
class Node words=1 refs=1 refclasses=Node
class Root words=0 refs=1 refclasses=Node
global root Root

# init: root -> n1 -> n2 -> nil
atomic func init() {
entry:
  r = global root
  n1 = new Node
  one = const 1
  storew n1 0 one
  n2 = new Node
  two = const 2
  storew n2 0 two
  storer n1 0 n2
  storer r 0 n1
  ret
}

# swap: reverse the chain to root -> n2 -> n1 -> nil (and back), so a
# zombie that caught the structure mid-update can see a cycle.
atomic func swap() {
entry:
  r = global root
  a = loadr r 0
  b = loadr a 0
  c = isnil b
  br c done doswap
doswap:
  storer b 0 a
  storer a 0 nil
  storer r 0 b
  jmp done
done:
  ret
}

# walk: traverse the chain summing keys; bounded only by the chain shape,
# so a zombie cycle would spin here without the watchdog.
atomic func walk() {
entry:
  r = global root
  s = const 0
  n = loadr r 0
  jmp loop
loop:
  c = isnil n
  br c done step
step:
  v = loadw n 0
  s = add s v
  n = loadr n 0
  jmp loop
done:
  ret s
}
`

// TestZombieWalkersAreContained runs walkers against swappers on the direct
// engine. Committed walks must always see the consistent sum 3 (1+2); doomed
// walks that catch a transient cycle must be cut off by the watchdog and
// retried rather than looping forever or returning a bogus sum.
func TestZombieWalkersAreContained(t *testing.T) {
	e := core.New()
	m, err := parseAndCompile(zombieSrc)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Load(m, e)
	if err != nil {
		t.Fatal(err)
	}
	init := p.NewMachine()
	if _, err := init.Call("init"); err != nil {
		t.Fatalf("init: %v", err)
	}

	const walkers = 4
	const walksPerWorker = 400
	var wg sync.WaitGroup
	stop := make(chan struct{})

	wg.Add(1)
	go func() { // swapper
		defer wg.Done()
		mach := p.NewMachine()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := mach.Call("swap"); err != nil {
				t.Errorf("swap: %v", err)
				return
			}
		}
	}()

	var walkersWG sync.WaitGroup
	for w := 0; w < walkers; w++ {
		walkersWG.Add(1)
		go func() {
			defer walkersWG.Done()
			mach := p.NewMachine()
			// A tight watchdog so transient cycles are cut quickly.
			mach.ValidateEvery = 64
			for i := 0; i < walksPerWorker; i++ {
				v, err := mach.Call("walk")
				if err != nil {
					t.Errorf("walk: %v", err)
					return
				}
				if v.W != 3 {
					t.Errorf("committed walk saw sum %d, want 3", v.W)
					return
				}
			}
		}()
	}
	walkersWG.Wait()
	close(stop)
	wg.Wait()
}

func parseAndCompile(src string) (*til.Module, error) {
	m, err := parser.Parse("zombie", src)
	if err != nil {
		return nil, err
	}
	if _, err := passes.Apply(m, passes.LevelFull); err != nil {
		return nil, err
	}
	return m, nil
}
