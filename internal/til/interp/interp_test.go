package interp

import (
	"sync"
	"testing"

	"memtx/internal/core"
	"memtx/internal/engine"
	"memtx/internal/ostm"
	"memtx/internal/rawengine"
	"memtx/internal/til"
	"memtx/internal/til/parser"
	"memtx/internal/til/passes"
	"memtx/internal/wstm"
)

// engines returns one engine of each design. The raw engine is only used for
// single-threaded programs.
func engines() map[string]engine.Engine {
	return map[string]engine.Engine{
		"raw":    rawengine.New(),
		"direct": core.New(),
		"wstm":   wstm.New(wstm.WithStripes(1 << 12)),
		"ostm":   ostm.New(),
	}
}

func loadProgram(t *testing.T, src string, level passes.Level, e engine.Engine) *Program {
	t.Helper()
	m, err := parser.Parse("test", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if _, err := passes.Apply(m, level); err != nil {
		t.Fatalf("passes: %v", err)
	}
	p, err := Load(m, e)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	return p
}

const fibSrc = `
func fib(n) {
entry:
  two = const 2
  c = lt n two
  br c base rec
base:
  ret n
rec:
  one = const 1
  a = sub n one
  b = sub n two
  x = call fib a
  y = call fib b
  s = add x y
  ret s
}
`

func TestPureComputation(t *testing.T) {
	for name, e := range engines() {
		t.Run(name, func(t *testing.T) {
			p := loadProgram(t, fibSrc, passes.LevelFull, e)
			m := p.NewMachine()
			got, err := m.Call("fib", Word(15))
			if err != nil {
				t.Fatalf("Call: %v", err)
			}
			if got.W != 610 {
				t.Fatalf("fib(15) = %d, want 610", got.W)
			}
		})
	}
}

const counterSrc = `
class Counter words=1 refs=0
global ctr Counter

atomic func inc() {
entry:
  p = global ctr
  v = loadw p 0
  one = const 1
  w = add v one
  storew p 0 w
  ret w
}

atomic func get() {
entry:
  p = global ctr
  v = loadw p 0
  ret v
}
`

func TestAtomicCounterAllEnginesAllLevels(t *testing.T) {
	for name, mk := range map[string]func() engine.Engine{
		"direct": func() engine.Engine { return core.New() },
		"wstm":   func() engine.Engine { return wstm.New(wstm.WithStripes(1 << 12)) },
		"ostm":   func() engine.Engine { return ostm.New() },
	} {
		for _, level := range passes.Levels {
			t.Run(name+"/"+level.String(), func(t *testing.T) {
				p := loadProgram(t, counterSrc, level, mk())
				m := p.NewMachine()
				for i := 0; i < 10; i++ {
					if _, err := m.Call("inc"); err != nil {
						t.Fatalf("inc: %v", err)
					}
				}
				got, err := m.Call("get")
				if err != nil {
					t.Fatalf("get: %v", err)
				}
				if got.W != 10 {
					t.Fatalf("counter = %d, want 10", got.W)
				}
			})
		}
	}
}

func TestConcurrentCounter(t *testing.T) {
	for name, mk := range map[string]func() engine.Engine{
		"direct": func() engine.Engine { return core.New() },
		"wstm":   func() engine.Engine { return wstm.New(wstm.WithStripes(1 << 12)) },
		"ostm":   func() engine.Engine { return ostm.New() },
	} {
		t.Run(name, func(t *testing.T) {
			p := loadProgram(t, counterSrc, passes.LevelFull, mk())
			const goroutines = 8
			const perG = 100
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					m := p.NewMachine()
					for i := 0; i < perG; i++ {
						if _, err := m.Call("inc"); err != nil {
							t.Errorf("inc: %v", err)
							return
						}
					}
				}()
			}
			wg.Wait()
			m := p.NewMachine()
			got, err := m.Call("get")
			if err != nil {
				t.Fatalf("get: %v", err)
			}
			if got.W != goroutines*perG {
				t.Fatalf("counter = %d, want %d", got.W, goroutines*perG)
			}
		})
	}
}

const listSrc = `
class Node words=1 refs=1 refclasses=Node
class List words=0 refs=1 refclasses=Node
global lst List

atomic func push(v) {
entry:
  l = global lst
  n = new Node
  storew n 0 v
  h = loadr l 0
  storer n 0 h
  storer l 0 n
  ret
}

atomic func sum() {
entry:
  l = global lst
  s = const 0
  n = loadr l 0
  jmp loop
loop:
  c = isnil n
  br c done step
step:
  v = loadw n 0
  s = add s v
  n = loadr n 0
  jmp loop
done:
  ret s
}
`

func TestLinkedListAllLevels(t *testing.T) {
	for _, level := range passes.Levels {
		t.Run(level.String(), func(t *testing.T) {
			p := loadProgram(t, listSrc, level, core.New())
			m := p.NewMachine()
			want := uint64(0)
			for i := uint64(1); i <= 50; i++ {
				if _, err := m.Call("push", Word(i)); err != nil {
					t.Fatalf("push: %v", err)
				}
				want += i
			}
			got, err := m.Call("sum")
			if err != nil {
				t.Fatalf("sum: %v", err)
			}
			if got.W != want {
				t.Fatalf("sum = %d, want %d", got.W, want)
			}
		})
	}
}

func TestReadOnlyTransactionsUsed(t *testing.T) {
	e := core.New()
	p := loadProgram(t, counterSrc, passes.LevelFull, e)
	m := p.NewMachine()
	// get$tx must be marked read-only by the pipeline.
	gi := p.Mod.FuncByName("get")
	clone := p.Mod.Funcs[p.Mod.Funcs[gi].Instrumented]
	if !clone.ReadOnly {
		t.Fatal("get$tx not marked read-only")
	}
	if _, err := m.Call("get"); err != nil {
		t.Fatalf("get: %v", err)
	}
}

func TestTrapNilDeref(t *testing.T) {
	src := `
class P words=1 refs=1 refclasses=P
global root P

atomic func boom() {
entry:
  p = global root
  q = loadr p 0
  v = loadw q 0
  ret v
}
`
	p := loadProgram(t, src, passes.LevelFull, core.New())
	m := p.NewMachine()
	_, err := m.Call("boom")
	if err == nil {
		t.Fatal("expected trap on nil dereference")
	}
	if !IsTrap(err) {
		t.Fatalf("error %v is not a trap", err)
	}
}

func TestTrapDivisionByZero(t *testing.T) {
	src := `
func f(a, b) {
entry:
  q = div a b
  ret q
}
`
	p := loadProgram(t, src, passes.LevelNaive, rawengine.New())
	m := p.NewMachine()
	if _, err := m.Call("f", Word(10), Word(0)); err == nil || !IsTrap(err) {
		t.Fatalf("err = %v, want trap", err)
	}
}

func TestTrapOutOfBoundsField(t *testing.T) {
	src := `
class P words=1 refs=0
global root P

atomic func f(i) {
entry:
  p = global root
  v = loadwi p i
  ret v
}
`
	p := loadProgram(t, src, passes.LevelFull, core.New())
	m := p.NewMachine()
	if _, err := m.Call("f", Word(99)); err == nil || !IsTrap(err) {
		t.Fatalf("err = %v, want trap", err)
	}
}

func TestImplicitTransactionsOutsideAtomic(t *testing.T) {
	src := `
class P words=1 refs=0
global root P

func poke(v) {
entry:
  p = global root
  storew p 0 v
  r = loadw p 0
  ret r
}
`
	e := core.New()
	p := loadProgram(t, src, passes.LevelNaive, e)
	m := p.NewMachine()
	got, err := m.Call("poke", Word(123))
	if err != nil {
		t.Fatalf("poke: %v", err)
	}
	if got.W != 123 {
		t.Fatalf("poke = %d, want 123", got.W)
	}
	if m.Stats.ImplicitTxns == 0 {
		t.Fatal("expected implicit transactions for non-atomic memory access")
	}
}

func TestStatsCountOperations(t *testing.T) {
	p := loadProgram(t, counterSrc, passes.LevelNaive, core.New())
	m := p.NewMachine()
	if _, err := m.Call("inc"); err != nil {
		t.Fatalf("inc: %v", err)
	}
	if m.Stats.OpensR == 0 || m.Stats.OpensU == 0 || m.Stats.Undos == 0 {
		t.Fatalf("barrier stats missing: %+v", m.Stats)
	}
	if m.Stats.Loads != 1 || m.Stats.Stores != 1 {
		t.Fatalf("access stats = loads:%d stores:%d, want 1/1", m.Stats.Loads, m.Stats.Stores)
	}
}

func TestOptimizationReducesDynamicBarriers(t *testing.T) {
	// A loop over an array: naive code opens per access; hoisted code opens
	// once.
	src := `
class Arr words=128 refs=0
global data Arr

atomic func fill(n) {
entry:
  p = global data
  i = const 0
  jmp head
head:
  c = lt i n
  br c body exit
body:
  storewi p i i
  one = const 1
  i = add i one
  jmp head
exit:
  ret
}
`
	run := func(level passes.Level) Stats {
		p := loadProgram(t, src, level, core.New())
		m := p.NewMachine()
		if _, err := m.Call("fill", Word(100)); err != nil {
			t.Fatalf("fill(%s): %v", level, err)
		}
		return m.Stats
	}
	naive := run(passes.LevelNaive)
	hoisted := run(passes.LevelHoist)
	if naive.OpensU != 100 {
		t.Fatalf("naive OpensU = %d, want 100", naive.OpensU)
	}
	if hoisted.OpensU != 1 {
		t.Fatalf("hoisted OpensU = %d, want 1", hoisted.OpensU)
	}
	// Dynamic-index undo ops cannot be hoisted and remain per-iteration.
	if hoisted.Undos != naive.Undos {
		t.Fatalf("undos changed: naive %d, hoisted %d", naive.Undos, hoisted.Undos)
	}
}

func TestVerifyRejectsBadModule(t *testing.T) {
	m := til.NewModule("bad")
	f := &til.Func{Name: "f", NRegs: 1, Instrumented: -1}
	f.Blocks = []*til.Block{{Name: "entry"}} // empty block
	m.AddFunc(f)
	if _, err := Load(m, rawengine.New()); err == nil {
		t.Fatal("Load accepted an invalid module")
	}
}
