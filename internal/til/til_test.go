package til

import (
	"strings"
	"testing"
)

// buildValid returns a small valid module exercising most instruction forms.
func buildValid() *Module {
	m := NewModule("t")
	ci := m.AddClass(Class{Name: "C", NWords: 2, NRefs: 1, RefClasses: []int{-1}})
	gi := m.AddGlobal("g", ci)

	hb := NewFuncBuilder("helper", false, "a")
	hb.Block("entry")
	hb.Ret("a")
	hi := m.AddFunc(hb.Done())

	b := NewFuncBuilder("main", true, "n")
	b.Block("entry")
	b.ConstW("one", 1)
	b.ConstNil("nothing")
	b.Global("g", gi)
	b.New("o", ci)
	b.Mov("m", "one")
	b.Bin(BinAdd, "s", "m", "n")
	b.IsNil("z", "nothing")
	b.RefEq("q", "o", "g")
	b.OpenR("g")
	b.LoadW("x", "g", 0)
	b.LoadWI("xi", "g", "one")
	b.LoadR("r", "g", 0)
	b.LoadRI("ri", "g", "z")
	b.OpenU("g")
	b.UndoW("g", 1)
	b.UndoWI("g", "one")
	b.UndoR("g", 0)
	b.UndoRI("g", "z")
	b.StoreW("g", 1, "s")
	b.StoreWI("g", "one", "s")
	b.StoreR("g", 0, "o")
	b.StoreRI("g", "z", "o")
	b.StoreR("g", 0, "") // nil store
	b.Validate()
	b.Call("c", hi, "s")
	b.Br("z", "then", "else")
	b.Block("then")
	b.Jmp("join")
	b.Block("else")
	b.Jmp("join")
	b.Block("join")
	b.Ret("c")
	m.AddFunc(b.Done())
	return m
}

func TestVerifyAcceptsValidModule(t *testing.T) {
	if err := Verify(buildValid()); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestVerifyErrors(t *testing.T) {
	mk := func(mutate func(m *Module)) error {
		m := buildValid()
		mutate(m)
		return Verify(m)
	}
	cases := []struct {
		name    string
		mutate  func(m *Module)
		wantSub string
	}{
		{"dup class", func(m *Module) { m.AddClass(Class{Name: "C"}) }, "duplicate"},
		{"empty class name", func(m *Module) { m.AddClass(Class{}) }, "empty name"},
		{"neg words", func(m *Module) { m.AddClass(Class{Name: "X", NWords: -1}) }, "negative"},
		{"bad immutable len", func(m *Module) {
			m.AddClass(Class{Name: "X", NWords: 2, ImmutableWords: []bool{true}})
		}, "immutable mask"},
		{"bad refclass len", func(m *Module) {
			m.AddClass(Class{Name: "X", NRefs: 2, RefClasses: []int{0}})
		}, "ref class list"},
		{"refclass range", func(m *Module) {
			m.AddClass(Class{Name: "X", NRefs: 1, RefClasses: []int{99}})
		}, "out of range"},
		{"dup global", func(m *Module) { m.AddGlobal("g", 0) }, "duplicate"},
		{"global class range", func(m *Module) { m.AddGlobal("g9", 42) }, "out of range"},
		{"dup func", func(m *Module) {
			fb := NewFuncBuilder("main", false)
			fb.Block("entry")
			fb.Ret("")
			m.AddFunc(fb.Done())
		}, "duplicate"},
		{"empty block", func(m *Module) {
			m.Funcs[1].Blocks = append(m.Funcs[1].Blocks, &Block{Name: "island"})
		}, "empty"},
		{"mid-block terminator", func(m *Module) {
			blk := m.Funcs[1].Blocks[0]
			blk.Instrs[3] = Instr{Op: OpRet, Dst: -1, A: -1, B: -1, Obj: -1}
		}, "terminator in mid-block"},
		{"no terminator", func(m *Module) {
			blk := m.Funcs[1].Blocks[0]
			blk.Instrs = blk.Instrs[:3] // drop through the end
		}, "does not end in a terminator"},
		{"reg out of range", func(m *Module) {
			m.Funcs[1].Blocks[0].Instrs[0].Dst = 999
		}, "out of range"},
		{"bad jump target", func(m *Module) {
			blk := m.Funcs[1].Blocks[1] // "then"
			blk.Instrs[len(blk.Instrs)-1].Then = 77
		}, "block target"},
		{"bad callee", func(m *Module) {
			for _, blk := range m.Funcs[1].Blocks {
				for i := range blk.Instrs {
					if blk.Instrs[i].Op == OpCall {
						blk.Instrs[i].Callee = 55
					}
				}
			}
		}, "callee"},
		{"call arity", func(m *Module) {
			for _, blk := range m.Funcs[1].Blocks {
				for i := range blk.Instrs {
					if blk.Instrs[i].Op == OpCall {
						blk.Instrs[i].Args = nil
					}
				}
			}
		}, "args"},
		{"negative field", func(m *Module) {
			m.Funcs[1].Blocks[0].Instrs[9].Idx = -2 // the LoadW
		}, "negative field"},
		{"invalid opcode", func(m *Module) {
			m.Funcs[1].Blocks[0].Instrs[0].Op = OpInvalid
		}, "invalid opcode"},
		{"bad instrumented link", func(m *Module) {
			m.Funcs[1].Instrumented = 99
		}, "instrumented link"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := mk(tc.mutate)
			if err == nil {
				t.Fatalf("Verify accepted module, want error containing %q", tc.wantSub)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not contain %q", err, tc.wantSub)
			}
		})
	}
}

func TestDefsAndUsesConsistency(t *testing.T) {
	m := buildValid()
	for _, f := range m.Funcs {
		for _, blk := range f.Blocks {
			for i := range blk.Instrs {
				in := &blk.Instrs[i]
				if d := in.Defs(); d != -1 && (d < 0 || d >= f.NRegs) {
					t.Errorf("%s: Defs out of range: %+v", f.Name, in)
				}
				for _, u := range in.Uses(nil) {
					if u < 0 || u >= f.NRegs {
						t.Errorf("%s: Uses out of range: %+v", f.Name, in)
					}
				}
			}
		}
	}
}

func TestInstrPredicates(t *testing.T) {
	barrier := Instr{Op: OpOpenR, Obj: 0}
	if !barrier.IsBarrier() || barrier.IsMemAccess() || barrier.IsStore() || barrier.IsTerminator() {
		t.Error("OpOpenR predicates wrong")
	}
	store := Instr{Op: OpStoreW, Obj: 0, A: 0}
	if store.IsBarrier() || !store.IsMemAccess() || !store.IsStore() {
		t.Error("OpStoreW predicates wrong")
	}
	load := Instr{Op: OpLoadW, Dst: 0, Obj: 0}
	if !load.IsMemAccess() || load.IsStore() {
		t.Error("OpLoadW predicates wrong")
	}
	ret := Instr{Op: OpRet, A: -1}
	if !ret.IsTerminator() {
		t.Error("OpRet predicates wrong")
	}
}

func TestPrintCoversEveryEmittedInstr(t *testing.T) {
	m := buildValid()
	out := Print(m)
	for _, frag := range []string{
		"const", "nil", "mov", "add", "isnil", "refeq", "new C", "global g",
		"loadw", "loadwi", "loadr", "loadri", "storew", "storewi", "storer",
		"storeri", "openr", "openu", "undow", "undowi", "undor", "undori",
		"validate", "call helper", "jmp", "br", "ret",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("printed module missing %q:\n%s", frag, out)
		}
	}
	if strings.Contains(out, "?op") {
		t.Errorf("printed module contains unknown opcode:\n%s", out)
	}
}

func TestBinKindNames(t *testing.T) {
	for k := BinAdd; k <= BinGe; k++ {
		name := k.String()
		if strings.Contains(name, "bin(") {
			t.Fatalf("BinKind %d has no name", k)
		}
		back, ok := BinKindByName(name)
		if !ok || back != k {
			t.Fatalf("BinKindByName(%q) = %v, %v", name, back, ok)
		}
	}
	if _, ok := BinKindByName("frobnicate"); ok {
		t.Fatal("unknown name resolved")
	}
}

func TestModuleLookups(t *testing.T) {
	m := buildValid()
	if m.ClassByName("C") < 0 || m.ClassByName("Nope") != -1 {
		t.Error("ClassByName wrong")
	}
	if m.FuncByName("main") < 0 || m.FuncByName("Nope") != -1 {
		t.Error("FuncByName wrong")
	}
	if m.GlobalByName("g") < 0 || m.GlobalByName("Nope") != -1 {
		t.Error("GlobalByName wrong")
	}
}

func TestNormalizeIsStableAndPreservesSemantics(t *testing.T) {
	m := buildValid()
	before := Print(m)
	Normalize(m)
	after1 := Print(m)
	Normalize(m)
	after2 := Print(m)
	if after1 != after2 {
		t.Fatal("Normalize is not idempotent")
	}
	if err := Verify(m); err != nil {
		t.Fatalf("Verify after Normalize: %v", err)
	}
	// buildValid creates blocks in textual order already, so normalization
	// should be a no-op here.
	if before != after1 {
		t.Fatalf("Normalize changed an already-canonical module:\n%s\nvs\n%s", before, after1)
	}
}
