// Package chaos is a deterministic, seedable fault injector for the STM
// engines and the stmkvd server. Named injection points are threaded through
// the transactional hot paths (ownership acquisition, commit-time validation,
// write-back, contention-manager waits) and the server's connection loop
// (frame read, response write, handler execution); at each point an enabled
// injector may force an abort, inject a bounded delay, or panic, with
// per-point parts-per-million rates.
//
// Decisions are a pure function of (seed, arrival index, point): two runs
// that reach the injection points in the same order make identical decisions,
// so a failing chaos run reproduces from its seed. Under concurrency the
// arrival order — and therefore the exact decision sequence — depends on
// scheduling, but the decision *rates* and the accounting below do not.
//
// The injector is installed process-wide via Enable/Disable. Disabled (the
// default) every instrumented site costs one atomic pointer load and a nil
// check — no allocation, no branch into injector code — so the zero-alloc
// guarantees on the server's read path hold verbatim.
package chaos

import (
	"fmt"
	"sync/atomic"
	"time"

	"memtx/internal/engine"
)

// Point names one instrumented site. STM points (OpenForRead through CMWait)
// are stepped from inside transaction attempts, where an injected abort
// becomes an ordinary engine retry; server points (FrameRead through Handler)
// are decided by the connection loop, where an injected "abort" kills the
// connection instead.
type Point uint8

const (
	// OpenForRead fires in the read barrier after the local-creator fast
	// path; injected aborts are classified CauseValidation.
	OpenForRead Point = iota
	// OpenForUpdate fires in the write barrier before ownership acquisition;
	// injected aborts are classified CauseOwnership.
	OpenForUpdate
	// CommitValidate fires at commit entry, before any lock or ownership is
	// taken, so an injected abort or panic unwinds with nothing held.
	CommitValidate
	// WriteBack fires after validation succeeds, while locks/ownership are
	// held. Only delays are legal here — New clamps abort and panic rates to
	// zero — because unwinding mid-write-back would corrupt committed state.
	WriteBack
	// CMWait fires each time a writer finds its target owned and is about to
	// consult the contention manager; injected aborts are classified
	// CauseCMKill (the fault a real CM give-up produces).
	CMWait
	// FrameRead fires after each request frame arrives; abort/panic
	// decisions kill the connection mid-pipeline.
	FrameRead
	// RespWrite fires before each response batch is written; abort/panic
	// decisions kill the connection with responses undelivered.
	RespWrite
	// Handler fires before each command executes; a panic decision exercises
	// the server's panic recovery.
	Handler
	// WALAppend fires after a committed write-set is appended to the shard's
	// log buffer. The transaction is already committed in memory, so only
	// delays are legal — New clamps abort and panic rates to zero.
	WALAppend
	// WALFsync fires in the group-commit leader just before the fsync, while
	// followers are parked on it. Delay-only, like WALAppend: the records
	// being flushed are committed state.
	WALFsync
	// SnapshotWrite fires at the start of a snapshot checkpoint attempt; an
	// injected abort skips the attempt (a later one retries), and a panic is
	// recovered by the checkpointer.
	SnapshotWrite
	// WALScrub fires at the start of a background scrub pass; an injected
	// abort skips the pass (a later one retries), and delays stretch it.
	WALScrub

	// NumPoints is the number of named injection points.
	NumPoints = int(WALScrub) + 1
)

// String returns the metric label for the point.
func (p Point) String() string {
	switch p {
	case OpenForRead:
		return "open_for_read"
	case OpenForUpdate:
		return "open_for_update"
	case CommitValidate:
		return "commit_validate"
	case WriteBack:
		return "write_back"
	case CMWait:
		return "cm_wait"
	case FrameRead:
		return "frame_read"
	case RespWrite:
		return "resp_write"
	case Handler:
		return "handler"
	case WALAppend:
		return "wal_append"
	case WALFsync:
		return "wal_fsync"
	case SnapshotWrite:
		return "snapshot_write"
	case WALScrub:
		return "wal_scrub"
	}
	return "unknown"
}

// Action is one decision outcome.
type Action uint8

const (
	// ActNone means the point passes through unfaulted.
	ActNone Action = iota
	// ActAbort forces a transactional retry (STM points) or a connection
	// kill (server points).
	ActAbort
	// ActDelay injects a bounded sleep.
	ActDelay
	// ActPanic panics with *InjectedPanic.
	ActPanic

	// NumActions is the number of decision outcomes.
	NumActions = int(ActPanic) + 1
)

// String returns the metric label for the action.
func (a Action) String() string {
	switch a {
	case ActNone:
		return "none"
	case ActAbort:
		return "abort"
	case ActDelay:
		return "delay"
	case ActPanic:
		return "panic"
	}
	return "unknown"
}

// PointConfig sets one point's fault rates in parts per million per step.
// Rates are applied in panic, abort, delay order from one uniform draw, so
// their sum should stay ≤ 1e6.
type PointConfig struct {
	AbortPPM uint32
	DelayPPM uint32
	PanicPPM uint32
	// MaxDelay bounds an injected delay; the actual sleep is uniform in
	// [1ns, MaxDelay]. Zero disables delays even if DelayPPM > 0.
	MaxDelay time.Duration
}

// Config seeds an Injector.
type Config struct {
	// Seed determines the whole decision sequence. Zero is a valid seed.
	Seed uint64
	// Points holds per-point rates; zero-valued entries inject nothing.
	Points [NumPoints]PointConfig
}

// Uniform builds a Config applying the same rates to every point each fault
// kind is legal at: WriteBack takes delays only, the transport points
// (FrameRead/RespWrite) map abort to a connection kill and never panic, and
// Handler takes delays and panics (a handler "abort" has no defined meaning).
func Uniform(seed uint64, abortPPM, delayPPM, panicPPM uint32, maxDelay time.Duration) Config {
	cfg := Config{Seed: seed}
	for p := 0; p < NumPoints; p++ {
		pc := &cfg.Points[p]
		pc.DelayPPM = delayPPM
		pc.MaxDelay = maxDelay
		switch Point(p) {
		case WriteBack, WALAppend, WALFsync:
		case FrameRead, RespWrite:
			pc.AbortPPM = abortPPM
		case Handler:
			pc.PanicPPM = panicPPM
		case SnapshotWrite, WALScrub:
			pc.AbortPPM = abortPPM
			pc.PanicPPM = panicPPM
		default:
			pc.AbortPPM = abortPPM
			pc.PanicPPM = panicPPM
		}
	}
	return cfg
}

// InjectedPanic is the panic value raised by an ActPanic decision, so
// recovery sites can tell injected faults from real bugs.
type InjectedPanic struct {
	Point Point
}

func (p *InjectedPanic) Error() string {
	return fmt.Sprintf("chaos: injected panic at %s", p.Point)
}

// Injector makes fault decisions and accounts for every one it injects.
// All methods are safe for concurrent use.
type Injector struct {
	seed     uint64
	seq      atomic.Uint64
	points   [NumPoints]PointConfig
	injected [NumPoints][NumActions]atomic.Uint64
}

// New builds an injector. Abort and panic rates at WriteBack, WALAppend, and
// WALFsync are clamped to zero: those points run on behalf of transactions
// that are already committed (or committing with locks held), and unwinding
// there would corrupt or silently drop committed state.
func New(cfg Config) *Injector {
	in := &Injector{seed: cfg.Seed, points: cfg.Points}
	for _, p := range []Point{WriteBack, WALAppend, WALFsync} {
		in.points[p].AbortPPM = 0
		in.points[p].PanicPPM = 0
	}
	return in
}

// active holds the process-wide injector; nil means disabled.
var active atomic.Pointer[Injector]

// Active returns the enabled injector, or nil. Instrumented sites call this
// on every pass; it is a single atomic load.
func Active() *Injector { return active.Load() }

// Enable installs in as the process-wide injector.
func Enable(in *Injector) { active.Store(in) }

// Disable removes the process-wide injector; instrumented sites revert to
// their no-op fast path.
func Disable() { active.Store(nil) }

// mix64 is a splitmix64-style finalizer: a bijective scramble good enough to
// turn (seed, seq, point) into independent-looking uniform draws.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Decide draws the fault decision for one arrival at p and accounts for it.
// The caller applies the action: server points interpret ActAbort as a
// connection kill; STM points should use Step instead, which applies the
// decision itself.
func (in *Injector) Decide(p Point) (Action, time.Duration) {
	pc := &in.points[p]
	if pc.AbortPPM == 0 && pc.DelayPPM == 0 && pc.PanicPPM == 0 {
		return ActNone, 0
	}
	seq := in.seq.Add(1)
	h := mix64(in.seed ^ seq*0x9e3779b97f4a7c15 ^ uint64(p)<<56)
	roll := uint32(h % 1_000_000)
	act := ActNone
	var d time.Duration
	switch {
	case roll < pc.PanicPPM:
		act = ActPanic
	case roll < pc.PanicPPM+pc.AbortPPM:
		act = ActAbort
	case roll < pc.PanicPPM+pc.AbortPPM+pc.DelayPPM && pc.MaxDelay > 0:
		act = ActDelay
		d = 1 + time.Duration((h>>20)%uint64(pc.MaxDelay))
	}
	in.injected[p][act].Add(1)
	return act, d
}

// Step draws and applies the decision for one arrival at an STM point:
// delays sleep in place, aborts panic with *engine.Retry carrying the
// point's abort cause (unwound by the engine's normal retry machinery), and
// panics raise *InjectedPanic. Callers must be at a site where the
// transaction can legally abort — New guarantees this for WriteBack by
// allowing delays only.
func (in *Injector) Step(p Point) {
	act, d := in.Decide(p)
	switch act {
	case ActDelay:
		time.Sleep(d)
	case ActAbort:
		engine.AbandonCause(abortCause(p), "chaos: injected abort at %s", p)
	case ActPanic:
		panic(&InjectedPanic{Point: p})
	}
}

// abortCause maps an STM point to the taxonomy cause a real fault at that
// point would carry.
func abortCause(p Point) engine.AbortCause {
	switch p {
	case OpenForUpdate:
		return engine.CauseOwnership
	case CMWait:
		return engine.CauseCMKill
	}
	return engine.CauseValidation
}

// Seed returns the injector's seed, for logging a reproducible run.
func (in *Injector) Seed() uint64 { return in.seed }

// Injected returns how many times action a was decided at point p.
func (in *Injector) Injected(p Point, a Action) uint64 {
	return in.injected[p][a].Load()
}

// InjectedTotal returns the count of injected faults (aborts, delays, and
// panics; ActNone passes excluded) across all points.
func (in *Injector) InjectedTotal() uint64 {
	var n uint64
	for p := 0; p < NumPoints; p++ {
		for a := 1; a < NumActions; a++ {
			n += in.injected[p][a].Load()
		}
	}
	return n
}
