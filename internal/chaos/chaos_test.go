package chaos

import (
	"testing"
	"time"

	"memtx/internal/engine"
)

func fullConfig(seed uint64) Config {
	return Uniform(seed, 200_000, 100_000, 50_000, time.Microsecond)
}

func TestDecideDeterministicForSeed(t *testing.T) {
	a := New(fullConfig(42))
	b := New(fullConfig(42))
	for i := 0; i < 10_000; i++ {
		p := Point(i % NumPoints)
		actA, dA := a.Decide(p)
		actB, dB := b.Decide(p)
		if actA != actB || dA != dB {
			t.Fatalf("draw %d at %s diverged: (%s,%v) vs (%s,%v)", i, p, actA, dA, actB, dB)
		}
	}
	if a.InjectedTotal() == 0 {
		t.Fatal("no faults injected over 10k draws at these rates")
	}
}

func TestDecideSeedsDiffer(t *testing.T) {
	a := New(fullConfig(1))
	b := New(fullConfig(2))
	same := 0
	const draws = 4096
	for i := 0; i < draws; i++ {
		actA, _ := a.Decide(OpenForRead)
		actB, _ := b.Decide(OpenForRead)
		if actA == actB {
			same++
		}
	}
	if same == draws {
		t.Fatal("different seeds produced identical decision sequences")
	}
}

func TestDecideRates(t *testing.T) {
	// Half the draws abort: the observed rate must land within a loose band.
	cfg := Config{Seed: 7}
	cfg.Points[OpenForRead] = PointConfig{AbortPPM: 500_000}
	in := New(cfg)
	const draws = 20_000
	for i := 0; i < draws; i++ {
		in.Decide(OpenForRead)
	}
	aborts := in.Injected(OpenForRead, ActAbort)
	if aborts < draws*4/10 || aborts > draws*6/10 {
		t.Fatalf("abort rate %d/%d far from configured 50%%", aborts, draws)
	}
	if got := in.Injected(OpenForRead, ActAbort) + in.Injected(OpenForRead, ActNone); got != draws {
		t.Fatalf("accounting: abort+none = %d, want %d", got, draws)
	}
}

func TestWriteBackClampedToDelays(t *testing.T) {
	cfg := Config{Seed: 3}
	cfg.Points[WriteBack] = PointConfig{
		AbortPPM: 1_000_000, PanicPPM: 1_000_000,
		DelayPPM: 100_000, MaxDelay: time.Nanosecond,
	}
	in := New(cfg)
	for i := 0; i < 2_000; i++ {
		in.Step(WriteBack) // must never panic or abort
	}
	if in.Injected(WriteBack, ActAbort) != 0 || in.Injected(WriteBack, ActPanic) != 0 {
		t.Fatal("WriteBack injected an abort or panic despite the clamp")
	}
	if in.Injected(WriteBack, ActDelay) == 0 {
		t.Fatal("WriteBack delays never fired at 10% over 2k draws")
	}
}

func TestStepAbortRaisesRetryWithPointCause(t *testing.T) {
	cases := []struct {
		p    Point
		want engine.AbortCause
	}{
		{OpenForRead, engine.CauseValidation},
		{OpenForUpdate, engine.CauseOwnership},
		{CommitValidate, engine.CauseValidation},
		{CMWait, engine.CauseCMKill},
	}
	for _, tc := range cases {
		cfg := Config{Seed: 1}
		cfg.Points[tc.p] = PointConfig{AbortPPM: 1_000_000}
		in := New(cfg)
		func() {
			defer func() {
				r := recover()
				rt, ok := r.(*engine.Retry)
				if !ok {
					t.Fatalf("%s: recovered %T, want *engine.Retry", tc.p, r)
				}
				if rt.Cause != tc.want {
					t.Fatalf("%s: cause %v, want %v", tc.p, rt.Cause, tc.want)
				}
			}()
			in.Step(tc.p)
		}()
	}
}

func TestStepPanicRaisesInjectedPanic(t *testing.T) {
	cfg := Config{Seed: 1}
	cfg.Points[Handler] = PointConfig{PanicPPM: 1_000_000}
	in := New(cfg)
	defer func() {
		ip, ok := recover().(*InjectedPanic)
		if !ok || ip.Point != Handler {
			t.Fatalf("recovered %v, want *InjectedPanic at handler", ip)
		}
	}()
	in.Step(Handler)
}

func TestEnableDisable(t *testing.T) {
	if Active() != nil {
		t.Fatal("injector active before Enable")
	}
	in := New(Config{Seed: 9})
	Enable(in)
	if Active() != in {
		t.Fatal("Enable did not install the injector")
	}
	Disable()
	if Active() != nil {
		t.Fatal("Disable left the injector installed")
	}
}
