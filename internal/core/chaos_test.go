package core

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"memtx/internal/chaos"
	"memtx/internal/engine"
)

// chaosTransferConfig injects every legal fault kind into the STM points at
// rates high enough that a few thousand transfers hit all of them.
func chaosTransferConfig(seed uint64) chaos.Config {
	cfg := chaos.Config{Seed: seed}
	for _, p := range []chaos.Point{chaos.OpenForRead, chaos.OpenForUpdate, chaos.CommitValidate, chaos.CMWait} {
		cfg.Points[p] = chaos.PointConfig{
			AbortPPM: 30_000,
			DelayPPM: 10_000,
			PanicPPM: 5_000,
			MaxDelay: 50 * time.Microsecond,
		}
	}
	cfg.Points[chaos.WriteBack] = chaos.PointConfig{DelayPPM: 20_000, MaxDelay: 50 * time.Microsecond}
	return cfg
}

// TestChaosTransferInvariants hammers a bank-transfer workload while the
// chaos layer injects aborts, delays, and panics into every STM hot path,
// then proves the two invariants a broken rollback would violate: the money
// is conserved, and no object is left owned (a leaked ownership record would
// wedge every later writer).
func TestChaosTransferInvariants(t *testing.T) {
	runChaosTransferInvariants(t, New())
}

// TestChaosTransferInvariantsAdaptiveCM repeats the chaos hammer with the
// adaptive contention-management policy enabled: injected aborts drive the
// EWMA and karma paths hard, and the same rollback invariants must hold.
func TestChaosTransferInvariantsAdaptiveCM(t *testing.T) {
	e := New()
	e.CM().SetPolicy(engine.CMAdaptive)
	runChaosTransferInvariants(t, e)
}

func runChaosTransferInvariants(t *testing.T, e *Engine) {
	const (
		accounts = 64
		initBal  = 1000
	)
	objs := make([]*Obj, accounts)
	for i := range objs {
		h := e.NewObj(1, 0)
		objs[i] = h.(*Obj)
		if err := engine.Run(e, func(tx engine.Txn) error {
			tx.OpenForUpdate(h)
			tx.LogForUndoWord(h, 0)
			tx.StoreWord(h, 0, initBal)
			return nil
		}); err != nil {
			t.Fatalf("seed account %d: %v", i, err)
		}
	}

	in := chaos.New(chaosTransferConfig(42))
	chaos.Enable(in)
	defer chaos.Disable()

	iters := 2000
	if testing.Short() {
		iters = 500
	}
	workers := 8
	var wg sync.WaitGroup
	panicCounts := make([]int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			for i := 0; i < iters; i++ {
				a, b := rng.Intn(accounts), rng.Intn(accounts)
				if a == b {
					continue
				}
				// Open in index order so two transfers cannot wait on each
				// other forever; the CM would resolve it anyway, but the
				// test should measure chaos faults, not deadlock churn.
				if a > b {
					a, b = b, a
				}
				ha, hb := engine.Handle(objs[a]), engine.Handle(objs[b])
				func() {
					defer func() {
						if r := recover(); r != nil {
							if _, injected := r.(*chaos.InjectedPanic); !injected {
								panic(r)
							}
							panicCounts[w]++
						}
					}()
					_ = engine.Run(e, func(tx engine.Txn) error {
						tx.OpenForUpdate(ha)
						tx.OpenForUpdate(hb)
						tx.LogForUndoWord(ha, 0)
						tx.LogForUndoWord(hb, 0)
						va := tx.LoadWord(ha, 0)
						vb := tx.LoadWord(hb, 0)
						amt := uint64(rng.Intn(10))
						if va < amt {
							return nil
						}
						tx.StoreWord(ha, 0, va-amt)
						tx.StoreWord(hb, 0, vb+amt)
						return nil
					})
				}()
			}
		}(w)
	}
	wg.Wait()
	chaos.Disable()

	if in.InjectedTotal() == 0 {
		t.Fatal("chaos injected nothing; the run proved nothing")
	}
	panics := 0
	for _, n := range panicCounts {
		panics += n
	}
	t.Logf("injected faults: %d (recovered panics: %d)", in.InjectedTotal(), panics)

	// Invariant 1: no leaked ownership. Every transaction has finished, so
	// every STM word must hold a plain version record again.
	for i, o := range objs {
		if m := o.meta.Load(); m.ownerID != 0 {
			t.Fatalf("account %d still owned by txn %d after all workers finished", i, m.ownerID)
		}
	}

	// Invariant 2: conservation. Sum the balances in one transaction.
	var sum uint64
	if err := engine.RunReadOnly(e, func(tx engine.Txn) error {
		sum = 0
		for _, o := range objs {
			tx.OpenForRead(o)
			sum += tx.LoadWord(o, 0)
		}
		return nil
	}); err != nil {
		t.Fatalf("summing balances: %v", err)
	}
	if want := uint64(accounts * initBal); sum != want {
		t.Fatalf("balance sum %d, want %d: a fault tore a transfer", sum, want)
	}

	// Accounting: the engine must agree with itself once quiescent.
	s := e.Stats()
	if s.Starts != s.Commits+s.Aborts {
		t.Fatalf("starts %d != commits %d + aborts %d", s.Starts, s.Commits, s.Aborts)
	}
	ms := e.Metrics().Snapshot()
	var byCause uint64
	for _, c := range engine.AbortCauses {
		byCause += ms.Aborts(c)
	}
	if byCause != s.Aborts {
		t.Fatalf("per-cause abort total %d != stats aborts %d", byCause, s.Aborts)
	}

	// The contention controller saw every attempt, and with this much
	// injected conflict its abort estimate must have moved off zero.
	cs := e.CM().Stats()
	if cs.Outcomes == 0 {
		t.Fatal("contention controller observed no outcomes")
	}
	if s.Aborts > 0 && cs.AbortEWMAPpm == 0 {
		t.Fatal("aborts occurred but the abort-rate EWMA stayed zero")
	}
}

// waitForever is a contention manager that never gives up, so a transaction
// blocked on an owner stays at the wait point until its deadline fires.
type waitForever struct{}

func (waitForever) Name() string { return "wait-forever" }

func (waitForever) Wait(int) bool {
	runtime.Gosched()
	return true
}

func TestDeadlineAbortsAtCMWait(t *testing.T) {
	e := New(WithContentionManager(waitForever{}))
	h := e.NewObj(1, 0)

	holder := e.Begin()
	holder.OpenForUpdate(h)
	defer holder.Abort()

	start := time.Now()
	err := engine.RunCtx(context.Background(), e, engine.RunOptions{MaxElapsed: 30 * time.Millisecond},
		func(tx engine.Txn) error {
			tx.OpenForUpdate(h)
			return nil
		})
	elapsed := time.Since(start)
	var te *engine.TimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want *TimeoutError", err)
	}
	if te.Op != "max-elapsed" || !errors.Is(err, engine.ErrRetryBudget) {
		t.Fatalf("op=%q unwrap=%v, want max-elapsed/ErrRetryBudget", te.Op, errors.Unwrap(te))
	}
	if elapsed > 5*time.Second {
		t.Fatalf("gave up after %v: the CM wait ignored the deadline", elapsed)
	}
	if got := e.Metrics().Snapshot().Aborts(engine.CauseDeadline); got == 0 {
		t.Fatal("no CauseDeadline abort recorded for the expired wait")
	}
}

func TestCancelAbortsAtCMWait(t *testing.T) {
	e := New(WithContentionManager(waitForever{}))
	h := e.NewObj(1, 0)

	holder := e.Begin()
	holder.OpenForUpdate(h)
	defer holder.Abort()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	err := engine.RunCtx(ctx, e, engine.RunOptions{}, func(tx engine.Txn) error {
		tx.OpenForUpdate(h)
		return nil
	})
	var te *engine.TimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want *TimeoutError", err)
	}
	if te.Op != "canceled" || !errors.Is(err, context.Canceled) {
		t.Fatalf("op=%q unwrap=%v, want canceled/context.Canceled", te.Op, errors.Unwrap(te))
	}
	if got := e.Metrics().Snapshot().Aborts(engine.CauseDeadline); got == 0 {
		t.Fatal("no CauseDeadline abort recorded for the canceled wait")
	}
}
