// Package core implements the paper's software transactional memory: a
// direct-update, object-based STM with eager ownership acquisition for
// updates, optimistic version-validated reads, per-word undo logging, a
// runtime duplicate-log filter, and GC-style log compaction.
//
// Layout of the design (mirroring the PLDI 2006 system):
//
//   - Every object carries an STM word (Obj.meta) holding either a version
//     number or a pointer to the owning transaction's update-log entry.
//   - OpenForUpdate CASes the STM word from a version record to an ownership
//     record; updates then happen in place, guarded by per-word undo-log
//     entries used for rollback.
//   - OpenForRead records the version seen; the read log is validated at
//     commit (and optionally mid-transaction, since the design is not
//     opaque).
//   - Commit releases ownership by publishing a version record with the
//     version incremented by one; rollback restores the logged words first.
//     A rollback that actually wrote to the object also increments the
//     version so that concurrent readers which may have observed dirty data
//     fail validation.
package core

import "sync/atomic"

// Obj is a transactional object managed by the direct-update engine: a fixed
// number of scalar words and reference fields, plus the STM metadata word.
//
// Fields are atomics because the direct-update design deliberately lets
// optimistic readers race with in-place writers; the race is resolved by
// commit-time validation, and atomics make it well-defined under the Go
// memory model.
type Obj struct {
	meta    atomic.Pointer[ownership]
	id      uint64 // unique, for log filtering and diagnostics
	creator uint64 // id of the allocating transaction, 0 if allocated outside
	words   []atomic.Uint64
	refs    []atomic.Pointer[Obj]
}

// ID returns the object's unique identity. IDs are drawn from per-allocator
// blocks of a global counter and never reused; ids may have gaps but are
// always unique (see idAlloc).
func (o *Obj) ID() uint64 { return o.id }

// NumWords returns the number of scalar fields.
func (o *Obj) NumWords() int { return len(o.words) }

// NumRefs returns the number of reference fields.
func (o *Obj) NumRefs() int { return len(o.refs) }

// ownership is the STM word's target. Exactly one of the two shapes is used:
//
//   - version record: ownerID == 0, version holds the object's version;
//   - ownership record: ownerID != 0 identifies the owning transaction and
//     entry points at its update-log entry for the object.
//
// Records are immutable once published, so a reader that loaded the pointer
// can examine the fields without further synchronization.
type ownership struct {
	version uint64
	ownerID uint64
	entry   *updateEntry
}

// updateEntry is an update-log record: everything needed to release or roll
// back one owned object. All three STM-word records an entry can publish are
// embedded by value — ownMeta (published at open), newMeta (published on
// commit or dirty rollback), and oldMeta (published on clean rollback) — so
// OpenForUpdate, Commit, and rollback perform no per-record allocation.
//
// Lifetime rule: entries are served from a per-transaction slab (chunks of
// slabChunk entries, one make per chunk). Because the published &e.newMeta /
// &e.oldMeta records escape into object headers and stay reachable for as
// long as the object lives, a chunk can never be recycled once any of its
// entries has been published; only the untouched tail of the current chunk
// carries over to the next attempt. oldMeta holds a *copy* of the displaced
// version record rather than a pointer to it, so an entry never references a
// previous owner's entry (or slab chunk) — otherwise each object would pin
// the slab chunks of its entire update history.
type updateEntry struct {
	obj     *Obj
	oldMeta ownership // copy of the displaced version record (published on clean abort)
	newMeta ownership // pre-built {version+1} record published on commit
	ownMeta ownership // the ownership record published at open time
	dirty   bool      // true once any field of obj has been undo-logged
}

// readEntry is a read-log record: the object and the version current when it
// was opened for read.
type readEntry struct {
	obj  *Obj
	seen uint64
}

// undoEntry is an undo-log record for a single word or reference field.
type undoEntry struct {
	obj     *Obj
	idx     int32
	isRef   bool
	oldWord uint64
	oldRef  *Obj
}
