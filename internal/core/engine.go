package core

import (
	"sync"
	"sync/atomic"

	"memtx/internal/engine"
)

// Each Engine hands out its own object ids and transaction ids from a
// per-engine counter (Engine.idSrc). Transaction ids double as allocation
// fingerprints (Obj.creator) and are never reused, which makes stale
// ownership records and stale creator tags harmless. Ids are only ever
// compared for equality within one engine — handles never legally cross
// engines — so independent engines (one per kv shard) may reuse the same
// numeric ids without ambiguity, and no process-global counter is needed.
//
// The counter is consumed in blocks of idBlockStride (see idAlloc): every
// transaction and every engine holds a private block and refills it from the
// engine counter only once per stride, so Alloc-heavy transactions on
// different cores stop ping-ponging this cache line. Blocks abandoned by
// pooled transactions leave gaps in the id space; gaps are harmless because
// ids are only ever compared for equality, never for adjacency, and are
// never reused.

// idBlockStride is the number of ids reserved per refill. 1024 keeps
// per-engine contention at one atomic add per ~1k allocations while wasting
// at most ~8 KiB of id space (out of 2^64) per idle pooled transaction.
const idBlockStride = 1024

// idAlloc is a private block of pre-reserved ids refilled from src (the
// owning engine's counter). The zero value is unusable; bind src before the
// first take. It is not safe for concurrent use; each transaction (and each
// engine, mutex-guarded) owns one.
type idAlloc struct {
	src         *atomic.Uint64
	next, limit uint64
}

func (a *idAlloc) take() uint64 {
	if a.next == a.limit {
		hi := a.src.Add(idBlockStride)
		a.next, a.limit = hi-idBlockStride+1, hi+1
	}
	id := a.next
	a.next++
	return id
}

// Engine is the direct-update STM engine. Create one with New; the zero
// value is not usable.
type Engine struct {
	cm               ContentionManager
	filterSize       int
	compactThreshold int  // auto-compact read log beyond this length; 0 = off
	checked          bool // verify protocol discipline (tests)

	pool    sync.Pool // *Txn
	stats   engineStats
	metrics engine.Metrics
	cmctl   engine.CM
	signal  commitSignal

	// valSeq advances whenever shared state may have changed: on the first
	// in-place write to each owned object (markDirty's clean→dirty
	// transition, before the write lands) and once per update commit before
	// its release loop. A read-only transaction snapshots it at begin; if it
	// is unchanged at commit and no opened object was owned by another
	// transaction, every optimistic read is still at its recorded version and
	// per-entry validation can be skipped (the read-only fast path).
	valSeq atomic.Uint64

	// idSrc is this engine's id counter (see the idAlloc commentary above);
	// every transaction block and the engine's own block refill from it.
	idSrc atomic.Uint64

	// idMu guards ids, the engine's id block for non-transactional NewObj
	// calls. Transactions allocate from their own unguarded blocks.
	idMu sync.Mutex
	ids  idAlloc
}

// engineStats holds cumulative counters, updated with atomics when folding in
// a finished transaction's local counts.
type engineStats struct {
	starts         atomic.Uint64
	commits        atomic.Uint64
	aborts         atomic.Uint64
	openForRead    atomic.Uint64
	openForUpdate  atomic.Uint64
	undoLogged     atomic.Uint64
	readLogEntries atomic.Uint64
	filterHits     atomic.Uint64
	localSkips     atomic.Uint64
	compactions    atomic.Uint64
	readLogDropped atomic.Uint64
	cmWaits        atomic.Uint64
	roFastCommits  atomic.Uint64
}

// Option configures an Engine.
type Option func(*Engine)

// WithContentionManager selects the update-update conflict policy.
// The default is Polite{}.
func WithContentionManager(cm ContentionManager) Option {
	return func(e *Engine) { e.cm = cm }
}

// WithFilterSize sets the per-transaction duplicate-log filter capacity in
// slots (rounded up to a power of two). Zero disables the filter. The
// default of 4096 covers the hot-field working sets of the E1/E2 kernels; E5
// sweeps the size. The table (~100 KiB at the default size) is allocated
// lazily on a transaction's first duplicate check, so transactions that
// never log pay nothing, and tables larger than keepFilterSlots are released
// when the transaction finishes rather than pinned by the pool.
func WithFilterSize(n int) Option {
	return func(e *Engine) { e.filterSize = n }
}

// WithCompaction enables automatic read-log compaction once the read log
// exceeds threshold entries. Zero (default) leaves compaction manual.
func WithCompaction(threshold int) Option {
	return func(e *Engine) { e.compactThreshold = threshold }
}

// WithChecked enables protocol checking: loads and stores verify that the
// object was opened appropriately and that stores were undo-logged. It is
// meant for tests of code using the decomposed API and costs a map lookup per
// access.
func WithChecked(on bool) Option {
	return func(e *Engine) { e.checked = on }
}

// New returns a direct-update STM engine.
func New(opts ...Option) *Engine {
	e := &Engine{
		cm:         Polite{},
		filterSize: 4096,
	}
	for _, o := range opts {
		o(e)
	}
	e.ids.src = &e.idSrc
	e.pool.New = func() any { return newTxn(e) }
	e.signal.init()
	return e
}

// Name implements engine.Engine.
func (e *Engine) Name() string { return "direct" }

// NewObj allocates a shared object outside any transaction, at version 1.
func (e *Engine) NewObj(nwords, nrefs int) engine.Handle {
	e.idMu.Lock()
	id := e.ids.take()
	e.idMu.Unlock()
	return newObj(id, 0, nwords, nrefs)
}

// versionOne is the initial STM word shared by every freshly allocated
// object. Version records are immutable once published and are compared by
// value everywhere except the OpenForUpdate CAS (which retries on pointer
// mismatch), so sharing one record is safe and saves an allocation per
// object.
var versionOne = &ownership{version: 1}

func newObj(id, creator uint64, nwords, nrefs int) *Obj {
	o := &Obj{
		id:      id,
		creator: creator,
		words:   make([]atomic.Uint64, nwords),
		refs:    make([]atomic.Pointer[Obj], nrefs),
	}
	o.meta.Store(versionOne)
	return o
}

// Begin implements engine.Engine.
func (e *Engine) Begin() engine.Txn { return e.begin(false) }

// BeginReadOnly implements engine.Engine.
func (e *Engine) BeginReadOnly() engine.Txn { return e.begin(true) }

func (e *Engine) begin(readonly bool) *Txn {
	tx := e.pool.Get().(*Txn)
	tx.start(readonly)
	e.stats.starts.Add(1)
	return tx
}

// Stats implements engine.Engine. Starts is loaded last so that
// Commits + Aborts <= Starts holds in every snapshot, even one taken while
// transactions are in flight.
func (e *Engine) Stats() engine.Stats {
	s := engine.Stats{
		Commits:        e.stats.commits.Load(),
		Aborts:         e.stats.aborts.Load(),
		OpenForRead:    e.stats.openForRead.Load(),
		OpenForUpdate:  e.stats.openForUpdate.Load(),
		UndoLogged:     e.stats.undoLogged.Load(),
		ReadLogEntries: e.stats.readLogEntries.Load(),
		FilterHits:     e.stats.filterHits.Load(),
		LocalSkips:     e.stats.localSkips.Load(),
		Compactions:    e.stats.compactions.Load(),
		ReadLogDropped: e.stats.readLogDropped.Load(),
		CMWaits:        e.stats.cmWaits.Load(),
		ROFastCommits:  e.stats.roFastCommits.Load(),
	}
	s.Starts = e.stats.starts.Load()
	return s
}

// Metrics implements engine.Engine.
func (e *Engine) Metrics() *engine.Metrics { return &e.metrics }

// CM implements engine.Engine. Beyond the retry-loop backoff pacing every
// engine gets from the controller, the direct-update engine consults it at
// OpenForUpdate ownership waits: under the adaptive policy a waiter's karma
// (attempts already lost) extends the contention manager's patience bound
// before CMKill, so long transactions stop starving under skew.
func (e *Engine) CM() *engine.CM { return &e.cmctl }

var _ engine.Engine = (*Engine)(nil)
