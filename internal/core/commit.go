package core

import (
	"time"

	"memtx/internal/chaos"
	"memtx/internal/engine"
)

// Validate implements engine.Txn: it re-checks every read-log entry against
// the objects' current STM words. A read is valid if
//
//   - the object is unowned at the recorded version, or
//   - the object is owned by this transaction and the displaced version is
//     the recorded one.
//
// Any other state — a newer version, or ownership by another transaction —
// is a conflict.
func (t *Txn) Validate() error {
	if !t.valid() {
		return engine.ErrConflict
	}
	return nil
}

func (t *Txn) valid() bool {
	for i := range t.readLog {
		re := &t.readLog[i]
		m := re.obj.meta.Load()
		switch {
		case m.ownerID == 0:
			if m.version != re.seen {
				return false
			}
		case m.ownerID == t.id:
			if m.entry.oldMeta.version != re.seen {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// Commit implements engine.Txn. It validates the read log and, if valid,
// releases every owned object by publishing its pre-built {version+1}
// record; the in-place updates thereby become permanent. On conflict the
// transaction is rolled back and ErrConflict returned.
//
// The release loop performs only pointer stores (the records were built at
// open time), matching the paper's constant-time commit per updated object.
func (t *Txn) Commit() error {
	if t.done {
		panic("core: Commit on finished transaction")
	}
	commitStart := time.Now()
	if in := chaos.Active(); in != nil {
		// Before the fast-path check so read-only commits are exercised too;
		// nothing is owned-for-release yet, so abort/panic unwinds cleanly.
		in.Step(chaos.CommitValidate)
	}
	if t.readonly && !t.roSawOwner && t.eng.valSeq.Load() == t.roSeq {
		// Read-only fast path: no object this transaction opened was owned
		// by a writer, and no writer has dirtied or committed anything since
		// the begin-time valSeq snapshot, so every optimistic read is still
		// at its recorded version — commit in O(1) without walking the read
		// log. See Engine.valSeq for why this is sound.
		eng := t.eng
		eng.stats.roFastCommits.Add(1)
		t.finish(true)
		eng.metrics.ObserveCommit(time.Since(commitStart))
		return nil
	}
	if !t.valid() {
		t.cause = engine.CauseValidation
		t.rollback()
		return engine.ErrConflict
	}
	if in := chaos.Active(); in != nil {
		// Delay-only by construction (chaos.New clamps WriteBack): stretches
		// the window where this transaction holds ownership past validation.
		in.Step(chaos.WriteBack)
	}
	for _, e := range t.updateLog {
		e.obj.meta.Store(&e.newMeta)
	}
	if len(t.updateLog) > 0 {
		// Invalidate concurrent read-only fast-path snapshots: the objects
		// released above now carry committed values a pre-commit snapshot
		// must not silently accept alongside older reads.
		t.eng.valSeq.Add(1)
	}
	eng, published := t.eng, len(t.updateLog) > 0
	t.finish(true) // recycles t; use the captured engine afterwards
	eng.metrics.ObserveCommit(time.Since(commitStart))
	if published {
		eng.signal.bump() // wake transactions blocked in WaitCommit
	}
	return nil
}

// Abort implements engine.Txn: it rolls back all in-place updates and
// releases ownership.
func (t *Txn) Abort() {
	if t.done {
		return
	}
	t.rollback()
}

// rollback restores undo-logged fields in reverse order, then releases each
// owned object. Objects that were actually written (dirty) are released at
// version+1 so that optimistic readers which may have observed the transient
// values fail validation; clean objects get their original version record
// back, avoiding false conflicts.
func (t *Txn) rollback() {
	for i := len(t.undoLog) - 1; i >= 0; i-- {
		u := &t.undoLog[i]
		if u.isRef {
			u.obj.refs[u.idx].Store(u.oldRef)
		} else {
			u.obj.words[u.idx].Store(u.oldWord)
		}
	}
	for _, e := range t.updateLog {
		if e.dirty {
			e.obj.meta.Store(&e.newMeta)
		} else {
			e.obj.meta.Store(&e.oldMeta)
		}
	}
	t.finish(false)
}

// Compact implements engine.Txn: it deduplicates the read log in place,
// keeping the earliest entry per object, and models the paper's GC-time log
// compaction. Duplicate read-log entries arise when the filter evicts a key
// or is disabled.
func (t *Txn) Compact() {
	if len(t.readLog) < 2 {
		return
	}
	if t.scratch == nil {
		t.scratch = make(map[uint64]struct{}, len(t.readLog))
	} else {
		clear(t.scratch)
	}
	seen := t.scratch
	kept := t.readLog[:0]
	for _, re := range t.readLog {
		if _, dup := seen[re.obj.id]; dup {
			continue
		}
		seen[re.obj.id] = struct{}{}
		kept = append(kept, re)
	}
	t.nReadDropped += uint64(len(t.readLog) - len(kept))
	t.readLog = kept
	t.nCompactions++
}

// finish folds the transaction's local counters into the engine and recycles
// the Txn value.
func (t *Txn) finish(committed bool) {
	t.done = true
	s := &t.eng.stats
	m := &t.eng.metrics
	m.ObserveAttempt(time.Since(t.began))
	if committed {
		s.commits.Add(1)
	} else {
		m.RecordAbort(t.cause)
		s.aborts.Add(1)
	}
	s.openForRead.Add(t.nOpenRead)
	s.openForUpdate.Add(t.nOpenUpdate)
	s.undoLogged.Add(t.nUndo)
	s.readLogEntries.Add(t.nReadLog)
	s.filterHits.Add(t.nFilterHits)
	s.localSkips.Add(t.nLocalSkips)
	s.compactions.Add(t.nCompactions)
	s.readLogDropped.Add(t.nReadDropped)
	s.cmWaits.Add(t.nCMWaits)
	// Avoid pinning giant log capacity in the pool.
	const keepCap = 1 << 14
	if cap(t.readLog) > keepCap {
		t.readLog = nil
	}
	if cap(t.undoLog) > keepCap {
		t.undoLog = nil
	}
	if cap(t.updateLog) > keepCap {
		t.updateLog = nil
	}
	if len(t.scratch) > keepCap {
		t.scratch = nil
	}
	// A filter table above keepFilterSlots (engines configured with very
	// large filters) is released rather than pinned by the pool; it is
	// re-created lazily if the next transaction needs it. Tables at or below
	// the bound — including the default size — are kept warm.
	if t.filter != nil && t.filter.Size() > keepFilterSlots {
		t.filter = nil
	}
	t.eng.pool.Put(t)
}

// keepFilterSlots bounds the duplicate-log filter capacity a pooled
// transaction may retain: the default filter size (4096 slots, ~100 KiB).
const keepFilterSlots = 1 << 12

// ReadLogLen reports the current read-log length; exported for the log
// compaction experiment (E6).
func (t *Txn) ReadLogLen() int { return len(t.readLog) }

// UndoLogLen reports the current undo-log length.
func (t *Txn) UndoLogLen() int { return len(t.undoLog) }
