package core_test

import (
	"testing"

	"memtx/internal/core"
	"memtx/internal/engine"
	"memtx/internal/enginetest"
)

func TestConformance(t *testing.T) {
	enginetest.Run(t, func() engine.Engine { return core.New() })
}

func TestConformanceNoFilter(t *testing.T) {
	enginetest.Run(t, func() engine.Engine { return core.New(core.WithFilterSize(0)) })
}

func TestConformancePassiveCM(t *testing.T) {
	enginetest.Run(t, func() engine.Engine {
		return core.New(core.WithContentionManager(core.Passive{}))
	})
}

func TestConformancePatientCM(t *testing.T) {
	enginetest.Run(t, func() engine.Engine {
		return core.New(core.WithContentionManager(core.Patient{}))
	})
}

func TestConformanceAdaptiveCM(t *testing.T) {
	enginetest.Run(t, func() engine.Engine {
		e := core.New()
		e.CM().SetPolicy(engine.CMAdaptive)
		return e
	})
}

func TestConformanceChecked(t *testing.T) {
	enginetest.Run(t, func() engine.Engine { return core.New(core.WithChecked(true)) })
}

func TestConformanceCompaction(t *testing.T) {
	enginetest.Run(t, func() engine.Engine { return core.New(core.WithCompaction(8)) })
}
