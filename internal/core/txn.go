package core

import (
	"context"
	"fmt"
	"time"

	"memtx/internal/chaos"
	"memtx/internal/engine"
	"memtx/internal/filter"
)

// readSlot is the filter key used for object-level read-log entries; word and
// reference undo entries use 2*idx and 2*idx+1 respectively, so the read key
// cannot collide with any undo key.
const readSlot = ^uint64(0)

// Txn is one attempt of a transaction against the direct-update engine.
type Txn struct {
	eng      *Engine
	id       uint64
	readonly bool
	done     bool
	began    time.Time         // attempt start, for the attempt-latency histogram
	cause    engine.AbortCause // attributed abort cause if this attempt aborts

	// ctx and deadline are bound by engine.RunCtx (CtxBinder); CM wait
	// points observe them so an attempt parked behind a stalled owner
	// honors its budget. Both are cleared on start — transactions begun via
	// plain Run are unbounded.
	ctx      context.Context
	deadline time.Time

	// roSeq is the engine valSeq snapshot taken at begin; roSawOwner records
	// whether any OpenForRead found the object owned by another transaction.
	// Together they gate the read-only commit fast path (see Engine.valSeq).
	roSeq      uint64
	roSawOwner bool

	readLog   []readEntry
	updateLog []*updateEntry
	undoLog   []undoEntry

	// filter is the duplicate-log filter, allocated lazily on the first
	// duplicate check (seen) so that transactions which never log pay
	// nothing and pooled transactions don't pin an unused table.
	filter *filter.Filter

	// slab serves update-log entries in chunks of slabChunk; slabUsed is the
	// index of the next free entry. Used entries are never recycled — their
	// embedded records escape into object headers (see updateEntry) — but
	// the untouched tail carries over across attempts, so OpenForUpdate
	// costs one allocation per slabChunk entries, amortized.
	slab     []updateEntry
	slabUsed int

	// ids is this transaction's private block of pre-reserved object ids;
	// it persists across pool reuse.
	ids idAlloc

	// scratch is Compact's deduplication set, reused across calls.
	scratch map[uint64]struct{}

	// opened tracks opened object ids in checked mode only.
	opened map[uint64]bool // value: true if open for update

	// karma is the number of attempts this logical transaction has already
	// lost, set by the retry loops via SetKarma before re-execution. The
	// adaptive contention-management policy consults it at ownership waits.
	karma int

	// local statistic counters, folded into the engine on finish.
	nOpenRead, nOpenUpdate, nUndo, nReadLog uint64
	nFilterHits, nLocalSkips                uint64
	nCompactions, nReadDropped, nCMWaits    uint64
}

// slabChunk is the number of update-log entries allocated per slab refill.
const slabChunk = 64

func newTxn(e *Engine) *Txn {
	t := &Txn{eng: e, ids: idAlloc{src: &e.idSrc}}
	if e.checked {
		t.opened = make(map[uint64]bool)
	}
	return t
}

func (t *Txn) start(readonly bool) {
	t.id = t.ids.take()
	t.readonly = readonly
	t.done = false
	t.began = time.Now()
	t.cause = engine.CauseExplicit
	t.ctx = nil
	t.deadline = time.Time{}
	t.roSeq = t.eng.valSeq.Load()
	t.roSawOwner = false
	t.karma = 0
	t.readLog = t.readLog[:0]
	t.updateLog = t.updateLog[:0]
	t.undoLog = t.undoLog[:0]
	if t.filter != nil {
		t.filter.Reset()
	}
	if t.opened != nil {
		clear(t.opened)
	}
	t.nOpenRead, t.nOpenUpdate, t.nUndo, t.nReadLog = 0, 0, 0, 0
	t.nFilterHits, t.nLocalSkips = 0, 0
	t.nCompactions, t.nReadDropped, t.nCMWaits = 0, 0, 0
}

// seen lazily creates the duplicate-log filter and records the key, reporting
// whether it was already recorded during this transaction.
func (t *Txn) seen(obj, field uint64) bool {
	if t.filter == nil {
		if t.eng.filterSize <= 0 {
			return false
		}
		t.filter = filter.New(t.eng.filterSize)
	}
	return t.filter.Seen(obj, field)
}

// newEntry returns the next free slab entry, refilling the slab when the
// current chunk is exhausted. The returned entry's fields are stale; the
// caller overwrites all of them before publishing.
func (t *Txn) newEntry() *updateEntry {
	if t.slabUsed == len(t.slab) {
		t.slab = make([]updateEntry, slabChunk)
		t.slabUsed = 0
	}
	e := &t.slab[t.slabUsed]
	t.slabUsed++
	return e
}

// ReadOnly implements engine.Txn.
func (t *Txn) ReadOnly() bool { return t.readonly }

// BindContext implements engine.CtxBinder: once bound, every CM wait checks
// the context and deadline and abandons the attempt with CauseDeadline when
// either has expired, so a budgeted transaction cannot block indefinitely
// behind a stalled owner.
func (t *Txn) BindContext(ctx context.Context, deadline time.Time) {
	t.ctx = ctx
	t.deadline = deadline
}

// SetKarma implements engine.KarmaSetter: the retry loops report how many
// attempts this logical transaction has already lost so the adaptive
// contention-management policy can grant it more patience at ownership waits.
func (t *Txn) SetKarma(karma int) { t.karma = karma }

// expireAtWait abandons the attempt with CauseDeadline if the bound context
// or deadline has expired while the transaction waits on another owner.
func (t *Txn) expireAtWait(objID, ownerID uint64) {
	if t.ctx != nil && t.ctx.Err() != nil {
		t.cause = engine.CauseDeadline
		engine.AbandonCause(engine.CauseDeadline,
			"context done waiting on object %d owned by txn %d", objID, ownerID)
	}
	if !t.deadline.IsZero() && !time.Now().Before(t.deadline) {
		t.cause = engine.CauseDeadline
		engine.AbandonCause(engine.CauseDeadline,
			"deadline passed waiting on object %d owned by txn %d", objID, ownerID)
	}
}

// SetAbortCause implements engine.Txn.
func (t *Txn) SetAbortCause(c engine.AbortCause) { t.cause = c }

func (t *Txn) obj(h engine.Handle) *Obj {
	o, ok := h.(*Obj)
	if !ok {
		panic(fmt.Sprintf("core: foreign handle %T passed to direct engine", h))
	}
	return o
}

// OpenForRead implements engine.Txn. Reads are optimistic: the current
// version is recorded and checked at commit. An object owned by another
// transaction can still be opened; the displaced version is recorded, so the
// read validates only if that owner rolls back without having written.
func (t *Txn) OpenForRead(h engine.Handle) {
	o := t.obj(h)
	t.nOpenRead++
	if o.creator == t.id {
		t.nLocalSkips++
		return
	}
	if t.opened != nil && !t.opened[o.id] {
		t.opened[o.id] = false
	}
	m := o.meta.Load()
	if m.ownerID == t.id {
		return // open for update subsumes open for read
	}
	if t.seen(o.id, readSlot) {
		t.nFilterHits++
		return
	}
	if in := chaos.Active(); in != nil {
		in.Step(chaos.OpenForRead)
	}
	seen := m.version
	if m.ownerID != 0 {
		seen = m.entry.oldMeta.version
		// The owner may have dirtied the object (and bumped valSeq) before
		// this transaction's roSeq snapshot, so an unchanged valSeq at commit
		// would not prove this read consistent. Force full validation.
		t.roSawOwner = true
	}
	t.readLog = append(t.readLog, readEntry{obj: o, seen: seen})
	t.nReadLog++
	if th := t.eng.compactThreshold; th > 0 && len(t.readLog) > th {
		t.Compact()
	}
}

// OpenForUpdate implements engine.Txn. Ownership is acquired eagerly by
// CASing the STM word from a version record to an ownership record pointing
// at a fresh update-log entry. On an update-update conflict the contention
// manager decides whether to spin or to abandon the attempt.
func (t *Txn) OpenForUpdate(h engine.Handle) {
	if t.readonly {
		panic("core: OpenForUpdate on read-only transaction")
	}
	o := t.obj(h)
	t.nOpenUpdate++
	if o.creator == t.id {
		t.nLocalSkips++
		return
	}
	if t.opened != nil {
		t.opened[o.id] = true
	}
	if in := chaos.Active(); in != nil {
		in.Step(chaos.OpenForUpdate)
	}
	attempt := 0
	karmaNoted := false
	for {
		m := o.meta.Load()
		switch {
		case m.ownerID == t.id:
			return // already own it
		case m.ownerID != 0:
			t.expireAtWait(o.id, m.ownerID)
			if in := chaos.Active(); in != nil {
				in.Step(chaos.CMWait)
			}
			// Under the adaptive policy, karma discounts the wait-round
			// counter fed to the policy's give-up check, extending this
			// waiter's patience in proportion to the attempts it has
			// already lost.
			waitAttempt := attempt
			if t.karma > 0 {
				if d := t.eng.cmctl.DeferAttempt(attempt, t.karma); d != attempt {
					waitAttempt = d
					if !karmaNoted {
						t.eng.cmctl.NoteKarmaDefer()
						karmaNoted = true
					}
				}
			}
			if !t.eng.cm.Wait(waitAttempt) {
				t.cause = engine.CauseCMKill
				engine.AbandonCause(engine.CauseCMKill,
					"object %d owned by txn %d", o.id, m.ownerID)
			}
			t.nCMWaits++
			attempt++
		default:
			e := t.newEntry()
			e.obj = o
			e.dirty = false
			// oldMeta copies the displaced version record by value so the
			// entry never references the previous owner's slab chunk.
			e.oldMeta = ownership{version: m.version}
			e.newMeta = ownership{version: m.version + 1}
			e.ownMeta = ownership{version: m.version, ownerID: t.id, entry: e}
			if o.meta.CompareAndSwap(m, &e.ownMeta) {
				t.updateLog = append(t.updateLog, e)
				return
			}
			// Lost the race: the entry was never published, so it can go
			// straight back to the slab. Loop to re-examine the STM word.
			t.slabUsed--
		}
	}
}

// LogForUndoWord implements engine.Txn.
func (t *Txn) LogForUndoWord(h engine.Handle, i int) {
	o := t.obj(h)
	if o.creator == t.id {
		t.nLocalSkips++
		return
	}
	if t.seen(o.id, uint64(i)*2) {
		t.nFilterHits++
		return
	}
	t.checkOwned(o, "LogForUndoWord")
	t.markDirty(o)
	t.undoLog = append(t.undoLog, undoEntry{obj: o, idx: int32(i), oldWord: o.words[i].Load()})
	t.nUndo++
}

// LogForUndoRef implements engine.Txn.
func (t *Txn) LogForUndoRef(h engine.Handle, i int) {
	o := t.obj(h)
	if o.creator == t.id {
		t.nLocalSkips++
		return
	}
	if t.seen(o.id, uint64(i)*2+1) {
		t.nFilterHits++
		return
	}
	t.checkOwned(o, "LogForUndoRef")
	t.markDirty(o)
	t.undoLog = append(t.undoLog, undoEntry{obj: o, idx: int32(i), isRef: true, oldRef: o.refs[i].Load()})
	t.nUndo++
}

// markDirty flags the owned object's update entry so that rollback bumps the
// version: concurrent optimistic readers may have observed the in-place
// writes and must fail validation even though the data was restored. The
// clean→dirty transition also advances the engine's valSeq *before* the first
// store lands, so any read-only transaction that can observe the in-place
// write sees a changed valSeq at commit and takes the full validation path.
func (t *Txn) markDirty(o *Obj) {
	m := o.meta.Load()
	if m.ownerID == t.id && !m.entry.dirty {
		t.eng.valSeq.Add(1)
		m.entry.dirty = true
	}
}

// checkOwned verifies protocol discipline in checked mode: the object must be
// owned by this transaction (or be transaction-local, handled by callers).
func (t *Txn) checkOwned(o *Obj, op string) {
	if !t.eng.checked {
		return
	}
	m := o.meta.Load()
	if m.ownerID != t.id {
		panic(fmt.Sprintf("core: %s on object %d not open for update", op, o.id))
	}
}

// LoadWord implements engine.Txn. After OpenForRead this is a single atomic
// load — the decomposed interface's fast path.
func (t *Txn) LoadWord(h engine.Handle, i int) uint64 {
	o := t.obj(h)
	if t.opened != nil && o.creator != t.id {
		if _, ok := t.opened[o.id]; !ok {
			panic(fmt.Sprintf("core: LoadWord on object %d that was never opened", o.id))
		}
	}
	return o.words[i].Load()
}

// StoreWord implements engine.Txn. The object must be open for update and the
// word undo-logged (both no-ops for transaction-local objects).
func (t *Txn) StoreWord(h engine.Handle, i int, v uint64) {
	if t.readonly {
		panic("core: StoreWord on read-only transaction")
	}
	o := t.obj(h)
	if o.creator != t.id {
		t.checkOwned(o, "StoreWord")
	}
	o.words[i].Store(v)
}

// LoadRef implements engine.Txn.
func (t *Txn) LoadRef(h engine.Handle, i int) engine.Handle {
	o := t.obj(h)
	if t.opened != nil && o.creator != t.id {
		if _, ok := t.opened[o.id]; !ok {
			panic(fmt.Sprintf("core: LoadRef on object %d that was never opened", o.id))
		}
	}
	r := o.refs[i].Load()
	if r == nil {
		return nil
	}
	return r
}

// StoreRef implements engine.Txn.
func (t *Txn) StoreRef(h engine.Handle, i int, r engine.Handle) {
	if t.readonly {
		panic("core: StoreRef on read-only transaction")
	}
	o := t.obj(h)
	if o.creator != t.id {
		t.checkOwned(o, "StoreRef")
	}
	var ro *Obj
	if r != nil {
		ro = t.obj(r)
	}
	o.refs[i].Store(ro)
}

// Alloc implements engine.Txn: the allocated object is tagged with this
// transaction's id so every subsequent barrier on it short-circuits (the
// paper's transaction-local allocation optimization). If the transaction
// aborts, the object is unreachable garbage; no rollback is needed.
func (t *Txn) Alloc(nwords, nrefs int) engine.Handle {
	return newObj(t.ids.take(), t.id, nwords, nrefs)
}

var _ engine.Txn = (*Txn)(nil)
