package core

import "runtime"

// ContentionManager decides how a transaction behaves when OpenForUpdate
// finds the object owned by another, still-running transaction. The paper's
// runtime resolves update-update conflicts at acquisition time; the policy
// for *how long to wait* before giving up is pluggable here so that the E7
// experiment can compare policies.
//
// Wait is called with the number of times this acquisition has already
// deferred; returning true means "yield and try the CAS again", false means
// "abandon this transaction attempt" (it will be rolled back and re-executed
// with backoff by engine.Run).
type ContentionManager interface {
	Name() string
	Wait(attempt int) bool
}

// Passive aborts itself immediately on any update-update conflict, relying on
// engine.Run's randomized backoff to break symmetry. It is the simplest
// livelock-safe policy.
type Passive struct{}

func (Passive) Name() string  { return "passive" }
func (Passive) Wait(int) bool { return false }

// Polite spins a bounded number of times, yielding the processor between
// attempts, before aborting itself. Short-lived owners usually release within
// the window, saving a rollback.
type Polite struct {
	// Spins is the number of yields before giving up; 0 means a default of 8.
	Spins int
}

func (p Polite) Name() string { return "polite" }

func (p Polite) Wait(attempt int) bool {
	spins := p.Spins
	if spins == 0 {
		spins = 8
	}
	if attempt >= spins {
		return false
	}
	runtime.Gosched()
	return true
}

// Patient spins for a long bounded window. It approximates "wait for the
// owner" policies: good when transactions are short and aborts expensive, bad
// under deep contention.
type Patient struct{}

func (Patient) Name() string { return "patient" }

func (Patient) Wait(attempt int) bool {
	if attempt >= 1024 {
		return false
	}
	runtime.Gosched()
	return true
}
