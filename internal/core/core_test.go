package core

import (
	"sync"
	"testing"

	"memtx/internal/engine"
)

// newChecked returns an engine with protocol checking on, suitable for unit
// tests of the decomposed API.
func newChecked(opts ...Option) *Engine {
	return New(append([]Option{WithChecked(true)}, opts...)...)
}

func TestCommitPublishesWord(t *testing.T) {
	e := newChecked()
	h := e.NewObj(2, 0)

	tx := e.Begin()
	tx.OpenForUpdate(h)
	tx.LogForUndoWord(h, 0)
	tx.StoreWord(h, 0, 42)
	if err := tx.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}

	tx = e.BeginReadOnly()
	tx.OpenForRead(h)
	if got := tx.LoadWord(h, 0); got != 42 {
		t.Fatalf("LoadWord = %d, want 42", got)
	}
	if got := tx.LoadWord(h, 1); got != 0 {
		t.Fatalf("LoadWord(1) = %d, want 0", got)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("read-only Commit: %v", err)
	}
}

func TestAbortRollsBack(t *testing.T) {
	e := newChecked()
	h := e.NewObj(1, 1)
	other := e.NewObj(0, 0).(*Obj)

	tx := e.Begin()
	tx.OpenForUpdate(h)
	tx.LogForUndoWord(h, 0)
	tx.StoreWord(h, 0, 7)
	tx.LogForUndoRef(h, 0)
	tx.StoreRef(h, 0, other)
	tx.Abort()

	tx = e.BeginReadOnly()
	tx.OpenForRead(h)
	if got := tx.LoadWord(h, 0); got != 0 {
		t.Fatalf("word after abort = %d, want 0", got)
	}
	if got := tx.LoadRef(h, 0); got != nil {
		t.Fatalf("ref after abort = %v, want nil", got)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
}

func TestAbortRestoresMultipleUndoEntriesInOrder(t *testing.T) {
	// Disable the filter so the same word is undo-logged twice; reverse
	// replay must restore the oldest value.
	e := newChecked(WithFilterSize(0))
	h := e.NewObj(1, 0)

	tx := e.Begin()
	tx.OpenForUpdate(h)
	tx.LogForUndoWord(h, 0)
	tx.StoreWord(h, 0, 1)
	tx.LogForUndoWord(h, 0) // logs value 1
	tx.StoreWord(h, 0, 2)
	tx.Abort()

	tx = e.BeginReadOnly()
	tx.OpenForRead(h)
	if got := tx.LoadWord(h, 0); got != 0 {
		t.Fatalf("word after double-logged abort = %d, want 0", got)
	}
	_ = tx.Commit()
}

func TestReadValidationConflict(t *testing.T) {
	e := newChecked()
	h := e.NewObj(1, 0)

	// Reader opens h, then a writer commits an update; the reader must get
	// ErrConflict at commit.
	r := e.Begin()
	r.OpenForRead(h)
	_ = r.LoadWord(h, 0)

	w := e.Begin()
	w.OpenForUpdate(h)
	w.LogForUndoWord(h, 0)
	w.StoreWord(h, 0, 9)
	if err := w.Commit(); err != nil {
		t.Fatalf("writer Commit: %v", err)
	}

	if err := r.Commit(); err != engine.ErrConflict {
		t.Fatalf("reader Commit = %v, want ErrConflict", err)
	}
}

func TestDirtyAbortInvalidatesReaders(t *testing.T) {
	// A reader that opened before a writer acquired the object may have seen
	// the writer's in-place (dirty) values. Even though the writer aborts and
	// restores the data, the reader must fail validation.
	e := newChecked()
	h := e.NewObj(1, 0)

	r := e.Begin()
	r.OpenForRead(h)

	w := e.Begin()
	w.OpenForUpdate(h)
	w.LogForUndoWord(h, 0)
	w.StoreWord(h, 0, 123)
	w.Abort()

	if err := r.Commit(); err != engine.ErrConflict {
		t.Fatalf("reader Commit after dirty abort = %v, want ErrConflict", err)
	}
}

func TestCleanAbortDoesNotInvalidateReaders(t *testing.T) {
	// A writer that acquired ownership but never wrote must not disturb
	// concurrent readers when it aborts.
	e := newChecked()
	h := e.NewObj(1, 0)

	r := e.Begin()
	r.OpenForRead(h)

	w := e.Begin()
	w.OpenForUpdate(h)
	w.Abort()

	if err := r.Commit(); err != nil {
		t.Fatalf("reader Commit after clean abort = %v, want nil", err)
	}
}

func TestValidateMidTransaction(t *testing.T) {
	e := newChecked()
	h := e.NewObj(1, 0)

	r := e.Begin()
	r.OpenForRead(h)
	if err := r.Validate(); err != nil {
		t.Fatalf("Validate before conflict: %v", err)
	}

	w := e.Begin()
	w.OpenForUpdate(h)
	w.LogForUndoWord(h, 0)
	w.StoreWord(h, 0, 5)
	if err := w.Commit(); err != nil {
		t.Fatalf("writer Commit: %v", err)
	}

	if err := r.Validate(); err != engine.ErrConflict {
		t.Fatalf("Validate after conflict = %v, want ErrConflict", err)
	}
	r.Abort()
}

func TestOpenForUpdateSubsumesRead(t *testing.T) {
	e := newChecked()
	h := e.NewObj(1, 0)

	tx := e.Begin()
	tx.OpenForUpdate(h)
	tx.OpenForRead(h) // must not add a read-log entry that later conflicts
	tx.LogForUndoWord(h, 0)
	tx.StoreWord(h, 0, 3)
	if err := tx.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if got := readBack(t, e, h); got != 3 {
		t.Fatalf("value = %d, want 3", got)
	}
}

func TestReadThenUpgradeSameVersionCommits(t *testing.T) {
	e := newChecked()
	h := e.NewObj(1, 0)

	tx := e.Begin()
	tx.OpenForRead(h)
	tx.OpenForUpdate(h) // runtime upgrade; version unchanged, must validate
	tx.LogForUndoWord(h, 0)
	tx.StoreWord(h, 0, 11)
	if err := tx.Commit(); err != nil {
		t.Fatalf("Commit after upgrade: %v", err)
	}
	if got := readBack(t, e, h); got != 11 {
		t.Fatalf("value = %d, want 11", got)
	}
}

func TestReadThenUpgradeAfterInterveningWriterConflicts(t *testing.T) {
	e := newChecked()
	h := e.NewObj(1, 0)

	tx := e.Begin()
	tx.OpenForRead(h)

	w := e.Begin()
	w.OpenForUpdate(h)
	w.LogForUndoWord(h, 0)
	w.StoreWord(h, 0, 77)
	if err := w.Commit(); err != nil {
		t.Fatalf("writer Commit: %v", err)
	}

	tx.OpenForUpdate(h) // acquires the newer version
	tx.LogForUndoWord(h, 0)
	tx.StoreWord(h, 0, 88)
	if err := tx.Commit(); err != engine.ErrConflict {
		t.Fatalf("Commit = %v, want ErrConflict", err)
	}
	// The failed transaction must have rolled its store back.
	if got := readBack(t, e, h); got != 77 {
		t.Fatalf("value = %d, want 77 (from the committed writer)", got)
	}
}

func TestUpdateUpdateConflictAbandons(t *testing.T) {
	e := newChecked(WithContentionManager(Passive{}))
	h := e.NewObj(1, 0)

	w1 := e.Begin()
	w1.OpenForUpdate(h)

	w2 := e.Begin()
	func() {
		defer func() {
			r := recover()
			if _, ok := r.(*engine.Retry); !ok {
				t.Fatalf("expected *engine.Retry panic, got %v", r)
			}
		}()
		w2.OpenForUpdate(h)
		t.Fatal("OpenForUpdate should not have succeeded")
	}()
	w2.Abort()
	w1.Abort()
}

func TestTransactionLocalAllocationSkipsBarriers(t *testing.T) {
	e := newChecked()
	before := e.Stats()

	tx := e.Begin()
	local := tx.Alloc(2, 0)
	tx.OpenForRead(local)
	tx.OpenForUpdate(local)
	tx.LogForUndoWord(local, 0)
	tx.StoreWord(local, 0, 1)
	if err := tx.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}

	d := e.Stats().Sub(before)
	if d.LocalSkips != 3 {
		t.Fatalf("LocalSkips = %d, want 3", d.LocalSkips)
	}
	if d.ReadLogEntries != 0 || d.UndoLogged != 0 {
		t.Fatalf("local object produced log entries: %+v", d)
	}
}

func TestAllocatedObjectSharedAfterCommit(t *testing.T) {
	e := newChecked()
	root := e.NewObj(0, 1)

	err := engine.Run(e, func(tx engine.Txn) error {
		n := tx.Alloc(1, 0)
		tx.StoreWord(n, 0, 99) // no barriers needed: transaction-local
		tx.OpenForUpdate(root)
		tx.LogForUndoRef(root, 0)
		tx.StoreRef(root, 0, n)
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	// After publication the object is shared and must obey the protocol.
	err = engine.RunReadOnly(e, func(tx engine.Txn) error {
		tx.OpenForRead(root)
		n := tx.LoadRef(root, 0)
		if n == nil {
			t.Fatal("published ref is nil")
		}
		tx.OpenForRead(n)
		if got := tx.LoadWord(n, 0); got != 99 {
			t.Fatalf("published word = %d, want 99", got)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("RunReadOnly: %v", err)
	}
}

func TestFilterSuppressesDuplicateLogs(t *testing.T) {
	e := New(WithFilterSize(256))
	h := e.NewObj(1, 0)
	before := e.Stats()

	tx := e.Begin()
	for i := 0; i < 10; i++ {
		tx.OpenForRead(h)
		_ = tx.LoadWord(h, 0)
	}
	tx.OpenForUpdate(h)
	for i := 0; i < 10; i++ {
		tx.LogForUndoWord(h, 0)
		tx.StoreWord(h, 0, uint64(i))
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}

	d := e.Stats().Sub(before)
	if d.ReadLogEntries != 1 {
		t.Fatalf("ReadLogEntries = %d, want 1", d.ReadLogEntries)
	}
	if d.UndoLogged != 1 {
		t.Fatalf("UndoLogged = %d, want 1", d.UndoLogged)
	}
	if d.FilterHits != 9+9 {
		t.Fatalf("FilterHits = %d, want 18", d.FilterHits)
	}
}

func TestNoFilterLogsEveryOpen(t *testing.T) {
	e := New(WithFilterSize(0))
	h := e.NewObj(1, 0)
	before := e.Stats()

	tx := e.Begin()
	for i := 0; i < 5; i++ {
		tx.OpenForRead(h)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	d := e.Stats().Sub(before)
	if d.ReadLogEntries != 5 {
		t.Fatalf("ReadLogEntries = %d, want 5", d.ReadLogEntries)
	}
}

func TestCompactDeduplicatesReadLog(t *testing.T) {
	e := New(WithFilterSize(0))
	h1 := e.NewObj(1, 0)
	h2 := e.NewObj(1, 0)

	tx := e.Begin().(*Txn)
	for i := 0; i < 4; i++ {
		tx.OpenForRead(h1)
		tx.OpenForRead(h2)
	}
	if got := tx.ReadLogLen(); got != 8 {
		t.Fatalf("read log before compaction = %d, want 8", got)
	}
	tx.Compact()
	if got := tx.ReadLogLen(); got != 2 {
		t.Fatalf("read log after compaction = %d, want 2", got)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
}

func TestAutoCompaction(t *testing.T) {
	e := New(WithFilterSize(0), WithCompaction(16))
	h := e.NewObj(1, 0)

	tx := e.Begin().(*Txn)
	for i := 0; i < 1000; i++ {
		tx.OpenForRead(h)
	}
	if got := tx.ReadLogLen(); got > 17 {
		t.Fatalf("read log with auto-compaction = %d, want <= 17", got)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if s := e.Stats(); s.Compactions == 0 || s.ReadLogDropped == 0 {
		t.Fatalf("expected compactions recorded, got %+v", s)
	}
}

func TestReadOnlyPanicsOnUpdate(t *testing.T) {
	e := newChecked()
	h := e.NewObj(1, 0)
	tx := e.BeginReadOnly()
	defer tx.Abort()
	assertPanics(t, func() { tx.OpenForUpdate(h) })
	assertPanics(t, func() { tx.StoreWord(h, 0, 1) })
	assertPanics(t, func() { tx.StoreRef(h, 0, nil) })
}

func TestCheckedModeCatchesMissingOpen(t *testing.T) {
	e := newChecked()
	h := e.NewObj(1, 0)
	tx := e.Begin()
	defer tx.Abort()
	assertPanics(t, func() { _ = tx.LoadWord(h, 0) })
	assertPanics(t, func() { tx.StoreWord(h, 0, 1) })
	assertPanics(t, func() { tx.LogForUndoWord(h, 0) })
}

func TestForeignHandlePanics(t *testing.T) {
	e := newChecked()
	tx := e.Begin()
	defer tx.Abort()
	assertPanics(t, func() { tx.OpenForRead("not an object") })
}

func assertPanics(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

func readBack(t *testing.T, e *Engine, h engine.Handle) uint64 {
	t.Helper()
	var v uint64
	err := engine.RunReadOnly(e, func(tx engine.Txn) error {
		tx.OpenForRead(h)
		v = tx.LoadWord(h, 0)
		return nil
	})
	if err != nil {
		t.Fatalf("readBack: %v", err)
	}
	return v
}

func TestRunRetriesUntilCommit(t *testing.T) {
	e := New()
	h := e.NewObj(1, 0)

	const goroutines = 8
	const perG = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				err := engine.Run(e, func(tx engine.Txn) error {
					tx.OpenForUpdate(h)
					tx.LogForUndoWord(h, 0)
					tx.StoreWord(h, 0, tx.LoadWord(h, 0)+1)
					return nil
				})
				if err != nil {
					t.Errorf("Run: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()

	if got := readBack(t, e, h); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
	s := e.Stats()
	if s.Commits < goroutines*perG {
		t.Fatalf("commits = %d, want >= %d", s.Commits, goroutines*perG)
	}
}

func TestStatsAccounting(t *testing.T) {
	e := New()
	h := e.NewObj(1, 0)
	before := e.Stats()

	_ = engine.Run(e, func(tx engine.Txn) error {
		tx.OpenForRead(h)
		tx.OpenForUpdate(h)
		tx.LogForUndoWord(h, 0)
		tx.StoreWord(h, 0, 1)
		return nil
	})

	d := e.Stats().Sub(before)
	if d.Starts != 1 || d.Commits != 1 || d.Aborts != 0 {
		t.Fatalf("lifecycle counters wrong: %+v", d)
	}
	if d.OpenForRead != 1 || d.OpenForUpdate != 1 || d.UndoLogged != 1 {
		t.Fatalf("operation counters wrong: %+v", d)
	}
}
