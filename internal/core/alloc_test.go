package core

import (
	"runtime"
	"runtime/debug"
	"sync"
	"testing"

	"memtx/internal/engine"
	"memtx/internal/race"
)

// disableGC turns the collector off for the duration of an allocation-guard
// test so that sync.Pool eviction cannot perturb the per-run counts. It also
// skips the test under the race detector, whose shadow bookkeeping shows up
// in AllocsPerRun.
func disableGC(t *testing.T) {
	t.Helper()
	if race.Enabled {
		t.Skip("allocation counts are perturbed by the race detector")
	}
	old := debug.SetGCPercent(-1)
	t.Cleanup(func() { debug.SetGCPercent(old) })
}

// TestOpenForReadFastPathNoAlloc pins the headline property of the decomposed
// direct-update design: once a pooled transaction is warm, a read-only
// transaction — OpenForRead plus LoadWord over a shared working set, then
// commit-time validation — performs zero allocations.
func TestOpenForReadFastPathNoAlloc(t *testing.T) {
	disableGC(t)
	e := New()
	objs := make([]engine.Handle, 128)
	for i := range objs {
		objs[i] = e.NewObj(1, 0)
	}
	run := func() {
		tx := e.Begin()
		for _, o := range objs {
			tx.OpenForRead(o)
			_ = tx.LoadWord(o, 0)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm the pooled transaction, its logs, and the lazy filter
	if avg := testing.AllocsPerRun(100, run); avg != 0 {
		t.Fatalf("open-for-read fast path allocates %.2f allocs per transaction, want 0", avg)
	}
}

// TestOpenForUpdateAmortizedAlloc pins the slab allocator's budget: at most
// one allocation per OpenForUpdate, amortized — in practice one slabChunk-
// sized chunk per slabChunk opens, since committed entries cannot be
// recycled (their published records escape into object headers).
func TestOpenForUpdateAmortizedAlloc(t *testing.T) {
	disableGC(t)
	e := New()
	objs := make([]engine.Handle, slabChunk)
	for i := range objs {
		objs[i] = e.NewObj(1, 0)
	}
	run := func() {
		tx := e.Begin()
		for _, o := range objs {
			tx.OpenForUpdate(o)
			tx.LogForUndoWord(o, 0)
			tx.StoreWord(o, 0, 7)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	run()
	avg := testing.AllocsPerRun(100, run)
	if perOpen := avg / float64(len(objs)); perOpen > 1 {
		t.Fatalf("OpenForUpdate allocates %.3f allocs per open, want <= 1 amortized", perOpen)
	}
	// Tighter regression bound: the slab refills once per run here; the old
	// two-records-per-open scheme cost 2*slabChunk allocations per run.
	if avg > 3 {
		t.Fatalf("update transaction of %d opens allocates %.2f per run, want <= 3 (one slab chunk)", len(objs), avg)
	}
}

// TestRunReadOnlyNoSteadyStateAlloc covers the public re-execution loop: the
// only steady-state allocation permitted per engine.Run transaction is the
// body closure the caller supplies (hoisted here), i.e. zero from the engine.
func TestRunReadOnlyNoSteadyStateAlloc(t *testing.T) {
	disableGC(t)
	e := New()
	o := e.NewObj(1, 0)
	body := func(tx engine.Txn) error {
		tx.OpenForRead(o)
		_ = tx.LoadWord(o, 0)
		return nil
	}
	run := func() {
		if err := engine.RunReadOnly(e, body); err != nil {
			t.Fatal(err)
		}
	}
	run()
	if avg := testing.AllocsPerRun(100, run); avg != 0 {
		t.Fatalf("engine.RunReadOnly allocates %.2f per transaction, want 0", avg)
	}
}

// TestFilterAllocatedLazily verifies that the duplicate-log filter table is
// only materialized when a transaction actually performs a duplicate check,
// so update-only and empty transactions never pay for it.
func TestFilterAllocatedLazily(t *testing.T) {
	e := New()
	o := e.NewObj(1, 0)

	tx := e.Begin().(*Txn)
	tx.OpenForUpdate(o) // no duplicate check on this path
	tx.StoreWord(o, 0, 1)
	if tx.filter != nil {
		t.Fatal("filter allocated by a transaction that never checked for duplicates")
	}
	tx.LogForUndoWord(o, 0) // first duplicate check materializes the table
	if tx.filter == nil {
		t.Fatal("filter not allocated on first duplicate check")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if tx.filter == nil {
		t.Fatal("default-size filter should stay warm on the pooled transaction")
	}
}

// TestOversizedFilterReleased verifies that a filter table larger than
// keepFilterSlots is dropped when the transaction finishes instead of being
// pinned by the pool.
func TestOversizedFilterReleased(t *testing.T) {
	e := New(WithFilterSize(keepFilterSlots * 4))
	o := e.NewObj(1, 0)

	tx := e.Begin().(*Txn)
	tx.OpenForRead(o)
	if tx.filter == nil {
		t.Fatal("filter not allocated on first duplicate check")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if tx.filter != nil {
		t.Fatalf("oversized filter (%d slots) retained by pooled transaction", keepFilterSlots*4)
	}
}

// TestWideTransactionBurstDoesNotPinMemory runs a burst of concurrent
// transactions against an engine configured with a very large filter and
// checks that the heap afterwards is nowhere near workers x table-size: the
// oversized tables must have been released at finish, not parked in the pool.
func TestWideTransactionBurstDoesNotPinMemory(t *testing.T) {
	const slots = 1 << 18 // ~6 MiB per table, well above keepFilterSlots
	const workers = 8
	const tableBytes = slots * 24 // three uint64 per filter slot

	e := New(WithFilterSize(slots))
	objs := make([]engine.Handle, 64)
	for i := range objs {
		objs[i] = e.NewObj(1, 0)
	}

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)

	for round := 0; round < 4; round++ {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				err := engine.Run(e, func(tx engine.Txn) error {
					for _, o := range objs {
						tx.OpenForRead(o) // touches the filter
						_ = tx.LoadWord(o, 0)
					}
					return nil
				})
				if err != nil {
					t.Error(err)
				}
			}()
		}
		wg.Wait()
	}

	runtime.GC()
	runtime.ReadMemStats(&after)
	pinned := int64(after.HeapAlloc) - int64(before.HeapAlloc)
	if limit := int64(2*tableBytes + 4<<20); pinned > limit {
		t.Fatalf("burst of wide transactions pinned %d bytes (limit %d); oversized filters leaked into the pool", pinned, limit)
	}
}

// TestConcurrentAllocUniqueIDs hammers the sharded id allocator from eight
// goroutines and verifies global uniqueness across transaction-local Alloc
// ids, non-transactional NewObj ids, and the transaction ids themselves.
func TestConcurrentAllocUniqueIDs(t *testing.T) {
	const workers = 8
	perWorker := 100_000
	if testing.Short() {
		perWorker = 25_000
	}
	const batch = 500 // allocations per transaction

	e := New()
	ids := make([][]uint64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			got := make([]uint64, 0, perWorker+perWorker/batch+perWorker/100)
			for done := 0; done < perWorker; done += batch {
				tx := e.Begin().(*Txn)
				got = append(got, tx.id)
				for i := 0; i < batch; i++ {
					h := tx.Alloc(1, 0)
					got = append(got, h.(*Obj).ID())
				}
				if err := tx.Commit(); err != nil {
					t.Error(err)
					return
				}
				// Sprinkle in engine-level allocations, which draw from the
				// engine's own block under a mutex.
				got = append(got, e.NewObj(1, 0).(*Obj).ID())
			}
			ids[w] = got
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	seen := make(map[uint64]struct{}, workers*(perWorker+perWorker/batch))
	for w := range ids {
		for _, id := range ids[w] {
			if id == 0 {
				t.Fatal("allocator handed out id 0 (reserved for 'unowned')")
			}
			if _, dup := seen[id]; dup {
				t.Fatalf("duplicate id %d handed out", id)
			}
			seen[id] = struct{}{}
		}
	}
}
