package core

import "sync"

// Savepoint marks a point in a transaction's logs to which the transaction
// can be partially rolled back — the mechanism behind composable
// alternatives (memtx.Tx.OrElse) and a building block the paper lists as
// future work for nested transactions.
type Savepoint struct {
	owner     *Txn
	id        uint64
	undoLen   int
	updateLen int
	readLen   int
}

// Save captures the current log state.
func (t *Txn) Save() Savepoint {
	return Savepoint{
		owner:     t,
		id:        t.id,
		undoLen:   len(t.undoLog),
		updateLen: len(t.updateLog),
		readLen:   len(t.readLog),
	}
}

// RollbackTo undoes every effect recorded after the savepoint was taken:
// in-place writes are restored in reverse order, and ownership acquired
// after the savepoint is released (with a version bump where the object was
// written, so concurrent optimistic readers that may have seen transient
// values fail validation). Read-log entries from the abandoned region are
// retained: they keep validating, which preserves the stability of the
// condition that led the abandoned branch to give up.
//
// The duplicate-log filter is reset because it may assert that fields rolled
// back here are "already logged"; resetting restores the invariant that
// every first post-rollback write is undo-logged again.
func (t *Txn) RollbackTo(sp Savepoint) {
	if sp.owner != t || sp.id != t.id {
		panic("core: RollbackTo with a savepoint from another transaction")
	}
	if t.done {
		panic("core: RollbackTo on finished transaction")
	}
	for i := len(t.undoLog) - 1; i >= sp.undoLen; i-- {
		u := &t.undoLog[i]
		if u.isRef {
			u.obj.refs[u.idx].Store(u.oldRef)
		} else {
			u.obj.words[u.idx].Store(u.oldWord)
		}
	}
	t.undoLog = t.undoLog[:sp.undoLen]

	// Objects acquired after the savepoint are released. (An object owned
	// before the savepoint never gets a second update-log entry, so every
	// entry beyond the mark was acquired in the abandoned region.)
	for _, e := range t.updateLog[sp.updateLen:] {
		if e.dirty {
			e.obj.meta.Store(&e.newMeta)
		} else {
			e.obj.meta.Store(&e.oldMeta)
		}
	}
	t.updateLog = t.updateLog[:sp.updateLen]
	if t.filter != nil {
		t.filter.Reset()
	}
}

// commitSignal is the engine-wide commit notification used by blocking
// retry: every committed update bumps a sequence number and wakes waiters.
type commitSignal struct {
	mu   sync.Mutex
	cond *sync.Cond
	seq  uint64
}

func (s *commitSignal) init() {
	s.cond = sync.NewCond(&s.mu)
}

// bump advances the sequence and wakes all waiters.
func (s *commitSignal) bump() {
	s.mu.Lock()
	s.seq++
	s.mu.Unlock()
	s.cond.Broadcast()
}

// current returns the sequence number.
func (s *commitSignal) current() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// waitPast blocks until the sequence exceeds seen.
func (s *commitSignal) waitPast(seen uint64) {
	s.mu.Lock()
	for s.seq <= seen {
		s.cond.Wait()
	}
	s.mu.Unlock()
}

// CommitSeq returns a monotonically increasing count of commits that
// published updates. Together with WaitCommit it implements blocking retry:
// snapshot the sequence before running a transaction body; if the body gives
// up, wait for the sequence to advance before re-executing.
func (e *Engine) CommitSeq() uint64 { return e.signal.current() }

// WaitCommit blocks until some transaction has committed updates after the
// given sequence snapshot.
func (e *Engine) WaitCommit(seen uint64) { e.signal.waitPast(seen) }
