package wstm

import (
	"runtime/debug"
	"sync"
	"testing"

	"memtx/internal/engine"
	"memtx/internal/race"
)

// TestSteadyStateAllocs pins the pooling work on the word-based baseline:
// once a pooled transaction has warmed its read log, write buffer, and
// commit-time stripe scratch, read-only transactions allocate nothing and
// update transactions allocate at most one stray (map-internal) object.
// Keeping both baselines allocation-free keeps E1's cross-engine comparison
// about protocol cost, not GC pressure.
func TestSteadyStateAllocs(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation counts are perturbed by the race detector")
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	e := New(WithStripes(1 << 16))
	objs := make([]engine.Handle, 64)
	for i := range objs {
		objs[i] = e.NewObj(2, 1)
	}
	read := func() {
		tx := e.BeginReadOnly()
		for _, o := range objs {
			tx.OpenForRead(o)
			_ = tx.LoadWord(o, 0)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	update := func() {
		tx := e.Begin()
		for _, o := range objs {
			tx.OpenForUpdate(o)
			tx.LogForUndoWord(o, 0)
			tx.StoreWord(o, 0, 9)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	read()
	update()
	if avg := testing.AllocsPerRun(100, read); avg != 0 {
		t.Fatalf("read-only transaction allocates %.2f per run, want 0", avg)
	}
	if avg := testing.AllocsPerRun(100, update); avg > 1 {
		t.Fatalf("update transaction allocates %.2f per run, want <= 1", avg)
	}
}

// TestConcurrentAllocUniqueIDs verifies the sharded id allocator: ids drawn
// concurrently from per-transaction blocks, engine-level blocks, and
// transaction begins never collide.
func TestConcurrentAllocUniqueIDs(t *testing.T) {
	const workers = 8
	perWorker := 50_000
	if testing.Short() {
		perWorker = 10_000
	}
	const batch = 500

	e := New(WithStripes(1 << 10))
	ids := make([][]uint64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			got := make([]uint64, 0, perWorker+perWorker/batch)
			for done := 0; done < perWorker; done += batch {
				err := engine.Run(e, func(tx engine.Txn) error {
					for i := 0; i < batch; i++ {
						got = append(got, tx.Alloc(1, 0).(*Obj).id)
					}
					return nil
				})
				if err != nil {
					t.Error(err)
					return
				}
				got = append(got, e.NewObj(1, 0).(*Obj).id)
			}
			ids[w] = got
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	seen := make(map[uint64]struct{}, workers*perWorker)
	for w := range ids {
		for _, id := range ids[w] {
			if _, dup := seen[id]; dup {
				t.Fatalf("duplicate id %d handed out", id)
			}
			seen[id] = struct{}{}
		}
	}
}
