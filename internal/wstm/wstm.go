// Package wstm implements the first baseline design the paper evaluates
// against: a word-based STM with buffered updates and a global version
// clock, in the style of WSTM/TL2.
//
// Metadata lives in a global table of striped versioned locks, indexed by a
// hash of (object, field). Reads are validated against the transaction's
// read version at the time of the read (so transactions observe consistent
// snapshots); writes are buffered in a private write set and written back at
// commit under the stripe locks.
//
// Because the design is word-based, its costs are attached to LoadWord and
// StoreWord rather than to the Open operations, which are no-ops here. That
// asymmetry is the point of experiment E1: the decomposed object-based
// direct-update STM pays once per object, this design pays once per access.
package wstm

import (
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"memtx/internal/chaos"
	"memtx/internal/engine"
)

// DefaultStripes is the size of the versioned-lock table.
const DefaultStripes = 1 << 20

// Each Engine hands out object and transaction ids from its own counter
// (Engine.idSrc). As in the direct engine, the counter is consumed in
// blocks of idBlockStride through per-transaction (and per-engine, for
// non-transactional NewObj) idAlloc blocks, so the hot allocation paths
// touch the engine's cache line once per ~1k ids. Ids are only compared for
// equality within one engine, so independent engines may repeat numeric
// ids; gaps from abandoned blocks are harmless: ids are unique per engine,
// never reused, and only compared for equality.

const idBlockStride = 1024

// idAlloc is a private block of pre-reserved ids refilled from src (the
// owning engine's counter); bind src before the first take. Not safe for
// concurrent use.
type idAlloc struct {
	src         *atomic.Uint64
	next, limit uint64
}

func (a *idAlloc) take() uint64 {
	if a.next == a.limit {
		hi := a.src.Add(idBlockStride)
		a.next, a.limit = hi-idBlockStride+1, hi+1
	}
	id := a.next
	a.next++
	return id
}

// Obj is a transactional object under the word-based engine. Fields are
// atomics because optimistic readers race with commit-time write-back.
type Obj struct {
	id      uint64
	creator uint64
	words   []atomic.Uint64
	refs    []atomic.Pointer[Obj]
}

// Engine is the word-based buffered-update STM.
type Engine struct {
	clock   atomic.Uint64
	stripes []paddedStripe
	mask    uint64
	pool    sync.Pool
	stats   stats
	metrics engine.Metrics
	cm      engine.CM

	// idSrc is this engine's id counter; every transaction block and the
	// engine's own block refill from it.
	idSrc atomic.Uint64

	// idMu guards ids, the engine's block for non-transactional NewObj.
	idMu sync.Mutex
	ids  idAlloc
}

// paddedStripe avoids false sharing between adjacent versioned locks.
type paddedStripe struct {
	v atomic.Uint64
	_ [7]uint64
}

type stats struct {
	starts, commits, aborts atomic.Uint64
	openRead, openUpdate    atomic.Uint64
	readLog, localSkips     atomic.Uint64
	roFastCommits           atomic.Uint64
}

// Option configures the engine.
type Option func(*Engine)

// WithStripes sets the versioned-lock table size (rounded up to a power of
// two).
func WithStripes(n int) Option {
	return func(e *Engine) {
		p := 1
		for p < n {
			p <<= 1
		}
		e.stripes = make([]paddedStripe, p)
		e.mask = uint64(p - 1)
	}
}

// New returns a word-based buffered-update engine.
func New(opts ...Option) *Engine {
	e := &Engine{}
	for _, o := range opts {
		o(e)
	}
	if e.stripes == nil {
		e.stripes = make([]paddedStripe, DefaultStripes)
		e.mask = DefaultStripes - 1
	}
	e.ids.src = &e.idSrc
	e.pool.New = func() any {
		return &Txn{eng: e, writes: make(map[wkey]wval), ids: idAlloc{src: &e.idSrc}}
	}
	return e
}

// Name implements engine.Engine.
func (e *Engine) Name() string { return "wstm" }

// NewObj implements engine.Engine.
func (e *Engine) NewObj(nwords, nrefs int) engine.Handle {
	e.idMu.Lock()
	id := e.ids.take()
	e.idMu.Unlock()
	return newObj(id, 0, nwords, nrefs)
}

func newObj(id, creator uint64, nwords, nrefs int) *Obj {
	return &Obj{
		id:      id,
		creator: creator,
		words:   make([]atomic.Uint64, nwords),
		refs:    make([]atomic.Pointer[Obj], nrefs),
	}
}

// Begin implements engine.Engine.
func (e *Engine) Begin() engine.Txn { return e.begin(false) }

// BeginReadOnly implements engine.Engine.
func (e *Engine) BeginReadOnly() engine.Txn { return e.begin(true) }

func (e *Engine) begin(readonly bool) *Txn {
	t := e.pool.Get().(*Txn)
	t.start(readonly)
	e.stats.starts.Add(1)
	return t
}

// Stats implements engine.Engine. Starts is loaded last so that
// Commits + Aborts <= Starts holds in every snapshot.
func (e *Engine) Stats() engine.Stats {
	s := engine.Stats{
		Commits:        e.stats.commits.Load(),
		Aborts:         e.stats.aborts.Load(),
		OpenForRead:    e.stats.openRead.Load(),
		OpenForUpdate:  e.stats.openUpdate.Load(),
		ReadLogEntries: e.stats.readLog.Load(),
		LocalSkips:     e.stats.localSkips.Load(),
		ROFastCommits:  e.stats.roFastCommits.Load(),
	}
	s.Starts = e.stats.starts.Load()
	return s
}

// Metrics implements engine.Engine.
func (e *Engine) Metrics() *engine.Metrics { return &e.metrics }

// CM implements engine.Engine. wstm has no in-attempt wait points — conflicts
// abandon immediately — so the controller paces only the retry-loop backoff.
func (e *Engine) CM() *engine.CM { return &e.cm }

// stripeFor hashes an object field to the index of its versioned lock.
func (e *Engine) stripeFor(o *Obj, slot uint64) uint64 {
	x := o.id*0x9E3779B97F4A7C15 ^ (slot+1)*0xBF58476D1CE4E5B9
	x ^= x >> 31
	return x & e.mask
}

func (e *Engine) stripe(i uint64) *atomic.Uint64 { return &e.stripes[i].v }

const lockedBit = 1

// wkey identifies one buffered field write.
type wkey struct {
	obj  *Obj
	slot uint64 // 2*i for word i, 2*i+1 for ref i
}

type wval struct {
	word uint64
	ref  *Obj
}

// Txn is a word-based transaction attempt.
type Txn struct {
	eng      *Engine
	id       uint64
	rv       uint64 // read version: global clock at start
	readonly bool
	done     bool
	began    time.Time         // attempt start, for the attempt-latency histogram
	cause    engine.AbortCause // attributed abort cause if this attempt aborts

	reads  []readEntry // stripe pointers and versions observed
	writes map[wkey]wval
	worder []wkey // write-back order (deterministic)

	// ids is this transaction's private id block; persists across reuse.
	ids idAlloc

	// lockScratch is the commit-time stripe list, reused across attempts so
	// commit performs no allocation.
	lockScratch []lockedStripe

	nOpenRead, nOpenUpdate, nReadLog, nLocalSkips uint64
}

type readEntry struct {
	stripe uint64 // index into the versioned-lock table
	seen   uint64
}

func (t *Txn) start(readonly bool) {
	t.id = t.ids.take()
	t.rv = t.eng.clock.Load()
	t.readonly = readonly
	t.done = false
	t.began = time.Now()
	t.cause = engine.CauseExplicit
	t.reads = t.reads[:0]
	clear(t.writes)
	t.worder = t.worder[:0]
	t.nOpenRead, t.nOpenUpdate, t.nReadLog, t.nLocalSkips = 0, 0, 0, 0
}

// ReadOnly implements engine.Txn.
func (t *Txn) ReadOnly() bool { return t.readonly }

// SetAbortCause implements engine.Txn.
func (t *Txn) SetAbortCause(c engine.AbortCause) { t.cause = c }

func (t *Txn) obj(h engine.Handle) *Obj {
	o, ok := h.(*Obj)
	if !ok {
		engine.Abandon("wstm: foreign handle")
	}
	return o
}

// OpenForRead implements engine.Txn. Word-based designs have no object-level
// open; the cost sits on each access.
func (t *Txn) OpenForRead(h engine.Handle) { t.nOpenRead++ }

// OpenForUpdate implements engine.Txn (a no-op for this design).
func (t *Txn) OpenForUpdate(h engine.Handle) {
	if t.readonly {
		panic("wstm: OpenForUpdate on read-only transaction")
	}
	t.nOpenUpdate++
}

// LogForUndoWord implements engine.Txn. Buffered updates need no undo log.
func (t *Txn) LogForUndoWord(engine.Handle, int) {}

// LogForUndoRef implements engine.Txn.
func (t *Txn) LogForUndoRef(engine.Handle, int) {}

// LoadWord implements engine.Txn: a TL2-style consistent read. The stripe is
// sampled before and after the data read; a locked or too-new stripe aborts
// the attempt.
func (t *Txn) LoadWord(h engine.Handle, i int) uint64 {
	o := t.obj(h)
	if o.creator == t.id {
		t.nLocalSkips++
		return o.words[i].Load()
	}
	slot := uint64(i) * 2
	if v, ok := t.writes[wkey{o, slot}]; ok {
		return v.word
	}
	if in := chaos.Active(); in != nil {
		in.Step(chaos.OpenForRead)
	}
	si := t.eng.stripeFor(o, slot)
	stripe := t.eng.stripe(si)
	for {
		v1 := stripe.Load()
		val := o.words[i].Load()
		v2 := stripe.Load()
		if v1 != v2 {
			continue // concurrent commit touched the stripe; resample
		}
		if v1&lockedBit != 0 {
			t.cause = engine.CauseOwnership
			engine.AbandonCause(engine.CauseOwnership, "wstm: stripe locked during read")
		}
		if v1>>1 > t.rv {
			t.cause = engine.CauseValidation
			engine.AbandonCause(engine.CauseValidation,
				"wstm: read too new (stripe %d > rv %d)", v1>>1, t.rv)
		}
		t.reads = append(t.reads, readEntry{stripe: si, seen: v1})
		t.nReadLog++
		return val
	}
}

// LoadRef implements engine.Txn.
func (t *Txn) LoadRef(h engine.Handle, i int) engine.Handle {
	o := t.obj(h)
	if o.creator == t.id {
		t.nLocalSkips++
		return refHandle(o.refs[i].Load())
	}
	slot := uint64(i)*2 + 1
	if v, ok := t.writes[wkey{o, slot}]; ok {
		return refHandle(v.ref)
	}
	if in := chaos.Active(); in != nil {
		in.Step(chaos.OpenForRead)
	}
	si := t.eng.stripeFor(o, slot)
	stripe := t.eng.stripe(si)
	for {
		v1 := stripe.Load()
		val := o.refs[i].Load()
		v2 := stripe.Load()
		if v1 != v2 {
			continue
		}
		if v1&lockedBit != 0 {
			t.cause = engine.CauseOwnership
			engine.AbandonCause(engine.CauseOwnership, "wstm: stripe locked during read")
		}
		if v1>>1 > t.rv {
			t.cause = engine.CauseValidation
			engine.AbandonCause(engine.CauseValidation, "wstm: read too new")
		}
		t.reads = append(t.reads, readEntry{stripe: si, seen: v1})
		t.nReadLog++
		return refHandle(val)
	}
}

func refHandle(o *Obj) engine.Handle {
	if o == nil {
		return nil
	}
	return o
}

// StoreWord implements engine.Txn: the write is buffered until commit.
func (t *Txn) StoreWord(h engine.Handle, i int, v uint64) {
	if t.readonly {
		panic("wstm: StoreWord on read-only transaction")
	}
	o := t.obj(h)
	if o.creator == t.id {
		t.nLocalSkips++
		o.words[i].Store(v)
		return
	}
	t.bufferWrite(wkey{o, uint64(i) * 2}, wval{word: v})
}

// StoreRef implements engine.Txn.
func (t *Txn) StoreRef(h engine.Handle, i int, r engine.Handle) {
	if t.readonly {
		panic("wstm: StoreRef on read-only transaction")
	}
	o := t.obj(h)
	var ro *Obj
	if r != nil {
		ro = t.obj(r)
	}
	if o.creator == t.id {
		t.nLocalSkips++
		o.refs[i].Store(ro)
		return
	}
	t.bufferWrite(wkey{o, uint64(i)*2 + 1}, wval{ref: ro})
}

func (t *Txn) bufferWrite(k wkey, v wval) {
	if in := chaos.Active(); in != nil {
		in.Step(chaos.OpenForUpdate)
	}
	if _, seen := t.writes[k]; !seen {
		t.worder = append(t.worder, k)
	}
	t.writes[k] = v
}

// Alloc implements engine.Txn.
func (t *Txn) Alloc(nwords, nrefs int) engine.Handle {
	return newObj(t.ids.take(), t.id, nwords, nrefs)
}

// Validate implements engine.Txn: every read stripe must still be unlocked at
// the version observed.
func (t *Txn) Validate() error {
	for i := range t.reads {
		if t.eng.stripe(t.reads[i].stripe).Load() != t.reads[i].seen {
			return engine.ErrConflict
		}
	}
	return nil
}

// Compact implements engine.Txn (the word-based design keeps no per-object
// logs worth compacting; duplicates are already value-level).
func (t *Txn) Compact() {}

// Commit implements engine.Txn: lock the write stripes in address order,
// re-validate the read set, write back, and release at a new clock value.
func (t *Txn) Commit() error {
	if t.done {
		panic("wstm: Commit on finished transaction")
	}
	commitStart := time.Now()
	if in := chaos.Active(); in != nil {
		// Before any stripe is locked, so an injected abort or panic unwinds
		// with nothing held.
		in.Step(chaos.CommitValidate)
	}
	eng := t.eng
	if len(t.writes) == 0 {
		// Reads were validated at access time against rv; nothing to publish.
		// For read-only transactions this *is* the O(1) fast path the other
		// engines reach via their valSeq snapshot, so count it as such.
		if t.readonly {
			eng.stats.roFastCommits.Add(1)
		}
		t.finish(true)
		eng.metrics.ObserveCommit(time.Since(commitStart))
		return nil
	}

	locked := t.lockWriteStripes()
	if locked == nil {
		t.cause = engine.CauseOwnership
		t.finish(false)
		return engine.ErrConflict
	}
	if !t.validateWithLocks(locked) {
		t.unlock(locked)
		t.cause = engine.CauseValidation
		t.finish(false)
		return engine.ErrConflict
	}
	if in := chaos.Active(); in != nil {
		// Delay-only by construction (chaos.New clamps WriteBack): stretches
		// the window where the write stripes stay locked.
		in.Step(chaos.WriteBack)
	}
	wv := t.eng.clock.Add(1)
	for _, k := range t.worder {
		v := t.writes[k]
		if k.slot&1 == 0 {
			k.obj.words[k.slot/2].Store(v.word)
		} else {
			k.obj.refs[k.slot/2].Store(v.ref)
		}
	}
	t.release(locked, wv)
	t.finish(true)
	eng.metrics.ObserveCommit(time.Since(commitStart))
	return nil
}

// lockWriteStripes acquires the distinct stripes covering the write set in
// ascending index order (avoiding deadlock against other committers). It
// returns nil if any stripe is already locked by another transaction. The
// stripe list lives in lockScratch, reused across attempts; deduplication is
// sort-then-skip-adjacent rather than a map, so the path is allocation-free
// once the scratch slice has grown to the write-set size.
func (t *Txn) lockWriteStripes() []lockedStripe {
	stripes := t.lockScratch[:0]
	for _, k := range t.worder {
		stripes = append(stripes, lockedStripe{idx: t.eng.stripeFor(k.obj, k.slot)})
	}
	t.lockScratch = stripes
	slices.SortFunc(stripes, func(a, b lockedStripe) int {
		switch {
		case a.idx < b.idx:
			return -1
		case a.idx > b.idx:
			return 1
		default:
			return 0
		}
	})
	n := 0
	for i := range stripes {
		if i > 0 && stripes[i].idx == stripes[n-1].idx {
			continue
		}
		stripes[n] = stripes[i]
		n++
	}
	stripes = stripes[:n]
	for i := range stripes {
		s := t.eng.stripe(stripes[i].idx)
		v := s.Load()
		if v&lockedBit != 0 || !s.CompareAndSwap(v, v|lockedBit) {
			t.unlock(stripes[:i])
			return nil
		}
		stripes[i].old = v
	}
	return stripes
}

type lockedStripe struct {
	idx uint64
	old uint64
}

// validateWithLocks re-checks the read set; stripes we hold locked are valid
// if their pre-lock version matches what the read observed. locked is sorted
// by stripe index (lockWriteStripes' order), so membership is a binary
// search — no allocation.
func (t *Txn) validateWithLocks(locked []lockedStripe) bool {
	for i := range t.reads {
		re := &t.reads[i]
		cur := t.eng.stripe(re.stripe).Load()
		if cur == re.seen {
			continue
		}
		if j, mine := slices.BinarySearchFunc(locked, re.stripe,
			func(l lockedStripe, idx uint64) int {
				switch {
				case l.idx < idx:
					return -1
				case l.idx > idx:
					return 1
				default:
					return 0
				}
			}); mine && locked[j].old == re.seen {
			continue
		}
		return false
	}
	return true
}

func (t *Txn) unlock(locked []lockedStripe) {
	for _, l := range locked {
		t.eng.stripe(l.idx).Store(l.old)
	}
}

func (t *Txn) release(locked []lockedStripe, wv uint64) {
	nv := wv << 1
	for _, l := range locked {
		t.eng.stripe(l.idx).Store(nv)
	}
}

// Abort implements engine.Txn: buffered writes are simply discarded.
func (t *Txn) Abort() {
	if t.done {
		return
	}
	t.finish(false)
}

func (t *Txn) finish(committed bool) {
	t.done = true
	s := &t.eng.stats
	m := &t.eng.metrics
	m.ObserveAttempt(time.Since(t.began))
	if committed {
		s.commits.Add(1)
	} else {
		m.RecordAbort(t.cause)
		s.aborts.Add(1)
	}
	s.openRead.Add(t.nOpenRead)
	s.openUpdate.Add(t.nOpenUpdate)
	s.readLog.Add(t.nReadLog)
	s.localSkips.Add(t.nLocalSkips)
	const keepCap = 1 << 14
	if cap(t.reads) > keepCap {
		t.reads = nil
	}
	if cap(t.lockScratch) > keepCap {
		t.lockScratch = nil
	}
	if len(t.writes) > keepCap {
		t.writes = make(map[wkey]wval)
		t.worder = nil
	}
	t.eng.pool.Put(t)
}

var (
	_ engine.Engine = (*Engine)(nil)
	_ engine.Txn    = (*Txn)(nil)
)
