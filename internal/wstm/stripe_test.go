package wstm_test

import (
	"testing"

	"memtx/internal/engine"
	"memtx/internal/wstm"
)

// TestSelfLockedStripeValidation: with a 2-stripe table, a transaction's
// reads and writes inevitably share stripes. At commit the write stripes are
// locked by the committing transaction itself; validation must accept its
// own locks (at the pre-lock version) instead of self-aborting.
func TestSelfLockedStripeValidation(t *testing.T) {
	e := wstm.New(wstm.WithStripes(2))
	h := e.NewObj(4, 0)

	err := engine.Run(e, func(tx engine.Txn) error {
		tx.OpenForRead(h)
		a := tx.LoadWord(h, 0)
		b := tx.LoadWord(h, 1)
		tx.OpenForUpdate(h)
		tx.StoreWord(h, 2, a+1)
		tx.StoreWord(h, 3, b+2)
		return nil
	})
	if err != nil {
		t.Fatalf("self-colliding commit failed: %v", err)
	}

	var c, d uint64
	_ = engine.RunReadOnly(e, func(tx engine.Txn) error {
		tx.OpenForRead(h)
		c, d = tx.LoadWord(h, 2), tx.LoadWord(h, 3)
		return nil
	})
	if c != 1 || d != 2 {
		t.Fatalf("read back (%d,%d), want (1,2)", c, d)
	}
}

// TestReadAfterWriteSameStripe: a read of a location whose stripe version
// was advanced by the transaction's own earlier commit attempt... simplest
// observable property: read-your-own-buffered-write even when the slot
// shares a stripe with already-read slots.
func TestReadOwnWriteUnderCollisions(t *testing.T) {
	e := wstm.New(wstm.WithStripes(2))
	h := e.NewObj(8, 0)
	err := engine.Run(e, func(tx engine.Txn) error {
		tx.OpenForUpdate(h)
		for i := 0; i < 8; i++ {
			tx.StoreWord(h, i, uint64(i*i))
		}
		tx.OpenForRead(h)
		for i := 0; i < 8; i++ {
			if got := tx.LoadWord(h, i); got != uint64(i*i) {
				t.Errorf("read-own-write slot %d = %d, want %d", i, got, i*i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// TestConflictOnSharedStripe: two transactions writing *different* objects
// that hash to the same stripe must still both commit (stripes serialize,
// not reject) when executed in sequence, and must conflict when a read
// overlaps a write in between.
func TestStripeSharingAcrossObjects(t *testing.T) {
	e := wstm.New(wstm.WithStripes(2))
	h1 := e.NewObj(1, 0)
	h2 := e.NewObj(1, 0)

	for i, h := range []engine.Handle{h1, h2} {
		if err := engine.Run(e, func(tx engine.Txn) error {
			tx.OpenForUpdate(h)
			tx.StoreWord(h, 0, uint64(i+1))
			return nil
		}); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}

	// A reader of h1 that straddles a commit to h2 (same stripe, false
	// sharing) must retry but eventually succeed via engine.Run.
	var v uint64
	err := engine.Run(e, func(tx engine.Txn) error {
		tx.OpenForRead(h1)
		v = tx.LoadWord(h1, 0)
		return nil
	})
	if err != nil || v != 1 {
		t.Fatalf("reader: v=%d err=%v", v, err)
	}
}
