package wstm_test

import (
	"testing"

	"memtx/internal/engine"
	"memtx/internal/enginetest"
	"memtx/internal/wstm"
)

func TestConformance(t *testing.T) {
	enginetest.Run(t, func() engine.Engine { return wstm.New() })
}

func TestConformanceAdaptiveCM(t *testing.T) {
	enginetest.Run(t, func() engine.Engine {
		e := wstm.New()
		e.CM().SetPolicy(engine.CMAdaptive)
		return e
	})
}

func TestConformanceSmallStripeTable(t *testing.T) {
	// A tiny stripe table forces false conflicts through hash collisions;
	// the engine must stay correct, only slower.
	enginetest.Run(t, func() engine.Engine { return wstm.New(wstm.WithStripes(64)) })
}

func TestReadTooNewAborts(t *testing.T) {
	e := wstm.New()
	h := e.NewObj(1, 0)

	r := e.Begin()
	// Another transaction commits, advancing the clock past r's read version.
	if err := engine.Run(e, func(tx engine.Txn) error {
		tx.OpenForUpdate(h)
		tx.StoreWord(h, 0, 1)
		return nil
	}); err != nil {
		t.Fatalf("writer: %v", err)
	}

	defer func() {
		rec := recover()
		if rec == nil {
			t.Fatal("expected Retry panic reading a too-new stripe")
		}
		if _, ok := rec.(*engine.Retry); !ok {
			t.Fatalf("expected *engine.Retry, got %v", rec)
		}
		r.Abort()
	}()
	r.OpenForRead(h)
	_ = r.LoadWord(h, 0)
}

func TestBufferedWriteReadBack(t *testing.T) {
	e := wstm.New()
	h := e.NewObj(2, 0)
	err := engine.Run(e, func(tx engine.Txn) error {
		tx.OpenForUpdate(h)
		tx.StoreWord(h, 0, 5)
		// A read of our own buffered write must observe it.
		tx.OpenForRead(h)
		if got := tx.LoadWord(h, 0); got != 5 {
			t.Errorf("read-own-write = %d, want 5", got)
		}
		tx.StoreWord(h, 0, 6) // overwrite in the buffer
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var got uint64
	_ = engine.RunReadOnly(e, func(tx engine.Txn) error {
		tx.OpenForRead(h)
		got = tx.LoadWord(h, 0)
		return nil
	})
	if got != 6 {
		t.Fatalf("committed value = %d, want 6 (last buffered write)", got)
	}
}

func TestAbortDiscardsBuffer(t *testing.T) {
	e := wstm.New()
	h := e.NewObj(1, 0)
	tx := e.Begin()
	tx.OpenForUpdate(h)
	tx.StoreWord(h, 0, 42)
	tx.Abort()

	var got uint64
	_ = engine.RunReadOnly(e, func(tx engine.Txn) error {
		tx.OpenForRead(h)
		got = tx.LoadWord(h, 0)
		return nil
	})
	if got != 0 {
		t.Fatalf("value after abort = %d, want 0 (in-place memory untouched)", got)
	}
}
