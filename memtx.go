// Package memtx is a software transactional memory for Go reproducing the
// system of "Optimizing Memory Transactions" (PLDI 2006): a direct-update,
// object-based STM with a decomposed barrier interface, eager ownership
// acquisition for updates, optimistic validated reads, runtime log
// filtering, and log compaction.
//
// # Quick start
//
//	tm := memtx.New()
//	a := tm.NewVar(100)
//	b := tm.NewVar(0)
//	err := tm.Atomic(func(tx *memtx.Tx) error {
//		v := a.Get(tx)
//		a.Set(tx, v-10)
//		b.Set(tx, b.Get(tx)+10)
//		return nil
//	})
//
// The body may run multiple times (on conflict) and must be free of
// non-transactional side effects.
//
// # Designs
//
// New builds the paper's direct-update engine. For comparison — exactly the
// baselines the paper evaluates against — WithDesign selects a word-based
// buffered-update STM (TL2/WSTM-flavoured) or an object-based
// buffered-update STM instead.
//
// # Decomposed interface
//
// Beyond the Var/RefVar/Record conveniences, Tx exposes the raw decomposed
// operations (OpenForRead, OpenForUpdate, LogForUndo*, direct field
// access) so that hand-optimized code — or a compiler — can apply the
// paper's barrier optimizations: open an object once for many accesses,
// upgrade read opens to update opens, hoist opens out of loops, and skip
// barriers on transaction-local allocations.
package memtx

import (
	"context"
	"errors"
	"strconv"
	"time"

	"memtx/internal/core"
	"memtx/internal/engine"
	"memtx/internal/ostm"
	"memtx/internal/wstm"
)

// Design selects the STM implementation.
type Design int

const (
	// DirectUpdate is the paper's design: in-place updates with undo
	// logging, eager write ownership, optimistic reads.
	DirectUpdate Design = iota
	// BufferedWord is the word-based buffered-update baseline with a global
	// version clock and striped versioned locks.
	BufferedWord
	// BufferedObject is the object-based buffered-update baseline using
	// shadow copies.
	BufferedObject
)

// String returns the short engine name used in benchmark output and
// command-line flags ("direct", "wstm", "ostm").
func (d Design) String() string {
	switch d {
	case BufferedWord:
		return "wstm"
	case BufferedObject:
		return "ostm"
	default:
		return "direct"
	}
}

// ParseDesign converts a short engine name back to a Design; it accepts
// exactly the strings String produces.
func ParseDesign(s string) (Design, error) {
	switch s {
	case "direct":
		return DirectUpdate, nil
	case "wstm":
		return BufferedWord, nil
	case "ostm":
		return BufferedObject, nil
	}
	return 0, errors.New("memtx: unknown design " + strconv.Quote(s) + " (want direct, wstm, or ostm)")
}

// CMPolicy selects how the TM paces transaction re-execution under
// contention: engine.CMFixed is the historical fixed randomized-exponential
// backoff; engine.CMAdaptive estimates the abort rate and adapts
// spin-vs-sleep thresholds and backoff caps, and grants karma priority to
// repeatedly-aborted transactions at contention-manager waits.
type CMPolicy = engine.CMPolicy

const (
	// CMFixed is the fixed backoff policy (the default).
	CMFixed = engine.CMFixed
	// CMAdaptive is the abort-rate-adaptive policy.
	CMAdaptive = engine.CMAdaptive
)

// ParseCMPolicy parses the -cm flag spellings ("fixed", "adaptive").
func ParseCMPolicy(s string) (CMPolicy, error) { return engine.ParseCMPolicy(s) }

// Config collects construction options.
type Config struct {
	design     Design
	filterSize int
	compaction int
	cm         core.ContentionManager
	cmPolicy   CMPolicy
	checked    bool
}

// Option configures New.
type Option func(*Config)

// WithDesign selects the STM design (default DirectUpdate).
func WithDesign(d Design) Option { return func(c *Config) { c.design = d } }

// WithFilterSize sets the duplicate-log filter capacity of the direct-update
// engine (0 disables; default 4096). Ignored by other designs.
func WithFilterSize(n int) Option { return func(c *Config) { c.filterSize = n } }

// WithCompaction enables automatic read-log compaction of the direct-update
// engine beyond the given log length. Ignored by other designs.
func WithCompaction(threshold int) Option { return func(c *Config) { c.compaction = threshold } }

// WithContentionManager sets the direct-update engine's update-update
// conflict policy (core.Passive, core.Polite, core.Patient).
func WithContentionManager(cm core.ContentionManager) Option {
	return func(c *Config) { c.cm = cm }
}

// WithCMPolicy selects the contention-management pacing policy (default
// CMFixed). Unlike WithContentionManager — which picks the direct-update
// engine's in-attempt wait policy — this applies to every design: it governs
// the retry-loop backoff all engines share, and on the direct-update engine
// it additionally enables karma-priority waits.
func WithCMPolicy(p CMPolicy) Option { return func(c *Config) { c.cmPolicy = p } }

// WithChecked enables protocol checking on the direct-update engine (for
// tests of decomposed-API code).
func WithChecked(on bool) Option { return func(c *Config) { c.checked = on } }

// TM is a transactional memory instance. All objects created by a TM must
// only be used with transactions of the same TM.
type TM struct {
	eng engine.Engine
}

// New creates a transactional memory.
func New(opts ...Option) *TM {
	cfg := Config{filterSize: 4096, cm: core.Polite{}}
	for _, o := range opts {
		o(&cfg)
	}
	var tm *TM
	switch cfg.design {
	case BufferedWord:
		tm = &TM{eng: wstm.New()}
	case BufferedObject:
		tm = &TM{eng: ostm.New()}
	default:
		tm = &TM{eng: core.New(
			core.WithFilterSize(cfg.filterSize),
			core.WithCompaction(cfg.compaction),
			core.WithContentionManager(cfg.cm),
			core.WithChecked(cfg.checked),
		)}
	}
	tm.eng.CM().SetPolicy(cfg.cmPolicy)
	return tm
}

// Engine exposes the underlying engine for benchmark harnesses.
func (tm *TM) Engine() engine.Engine { return tm.eng }

// Stats returns cumulative engine counters.
func (tm *TM) Stats() engine.Stats { return tm.eng.Stats() }

// Metrics returns a snapshot of the engine's observability recorder: abort
// counts by cause (engine.AbortCauses), and log-scaled histograms of attempt
// duration, commit duration, and retries per committed transaction. Diff two
// snapshots with Sub for per-interval figures.
func (tm *TM) Metrics() engine.MetricsSnapshot { return tm.eng.Metrics().Snapshot() }

// CMStats returns a snapshot of the contention-management controller: the
// active policy, the abort-rate estimate, the current pacing knobs, and the
// stm_cm_* counters.
func (tm *TM) CMStats() engine.CMStats { return tm.eng.CM().Stats() }

// Tx is an in-flight transaction. It is only valid inside the Atomic or
// ReadOnly body that received it.
type Tx struct {
	tm *TM
	tx engine.Txn
}

// Atomic runs body as a transaction, re-executing it on conflict until it
// commits. A non-nil error aborts and is returned unchanged.
func (tm *TM) Atomic(body func(tx *Tx) error) error {
	return engine.Run(tm.eng, func(etx engine.Txn) error {
		return body(&Tx{tm: tm, tx: etx})
	})
}

// ReadOnly runs body as a read-only transaction (cheaper protocol; updates
// panic).
func (tm *TM) ReadOnly(body func(tx *Tx) error) error {
	return engine.RunReadOnly(tm.eng, func(etx engine.Txn) error {
		return body(&Tx{tm: tm, tx: etx})
	})
}

// TxOptions bounds a context-aware transaction (AtomicCtx/ReadOnlyCtx). The
// zero value applies no bound beyond the context's own deadline.
type TxOptions struct {
	// MaxAttempts caps total attempts (1 means no retry); 0 means unlimited.
	MaxAttempts int
	// MaxElapsed caps the total time spent across attempts; 0 means
	// unlimited. Whichever of MaxElapsed and the context deadline expires
	// first wins.
	MaxElapsed time.Duration
}

// AtomicCtx is Atomic bounded by ctx and opts. Between attempts — and, on
// the direct-update engine, at contention-manager waits inside an attempt —
// the transaction observes ctx cancellation, ctx's deadline, and the retry
// budget; when a bound fires it gives up with an *engine.TimeoutError
// (unwrapping to context.Canceled, context.DeadlineExceeded, or
// engine.ErrRetryBudget) instead of retrying forever.
func (tm *TM) AtomicCtx(ctx context.Context, opts TxOptions, body func(tx *Tx) error) error {
	return engine.RunCtx(ctx, tm.eng,
		engine.RunOptions{MaxAttempts: opts.MaxAttempts, MaxElapsed: opts.MaxElapsed},
		func(etx engine.Txn) error {
			return body(&Tx{tm: tm, tx: etx})
		})
}

// ReadOnlyCtx is ReadOnly bounded by ctx and opts (see AtomicCtx).
func (tm *TM) ReadOnlyCtx(ctx context.Context, opts TxOptions, body func(tx *Tx) error) error {
	return engine.RunReadOnlyCtx(ctx, tm.eng,
		engine.RunOptions{MaxAttempts: opts.MaxAttempts, MaxElapsed: opts.MaxElapsed},
		func(etx engine.Txn) error {
			return body(&Tx{tm: tm, tx: etx})
		})
}

// AbortError, returned from an Atomic body, rolls the transaction back
// without retrying; Atomic returns it unchanged. Use it for deliberate
// "give up" paths:
//
//	return memtx.AbortError
var AbortError = errors.New("memtx: aborted by user")

// Validate re-checks the transaction's reads mid-flight; it returns
// engine.ErrConflict if the transaction is doomed. Long transactions call
// this periodically because the direct-update design is not opaque.
func (tx *Tx) Validate() error { return tx.tx.Validate() }

// Raw returns the underlying decomposed transaction for advanced use.
func (tx *Tx) Raw() engine.Txn { return tx.tx }

// Var is a transactional uint64 cell.
type Var struct {
	tm *TM
	h  engine.Handle
}

// NewVar creates a Var with an initial value, outside any transaction.
func (tm *TM) NewVar(initial uint64) *Var {
	v := &Var{tm: tm, h: tm.eng.NewObj(1, 0)}
	if initial != 0 {
		mustRun(tm, func(tx *Tx) error {
			v.Set(tx, initial)
			return nil
		})
	}
	return v
}

// Get reads the cell.
func (v *Var) Get(tx *Tx) uint64 {
	tx.tx.OpenForRead(v.h)
	return tx.tx.LoadWord(v.h, 0)
}

// Set writes the cell.
func (v *Var) Set(tx *Tx, val uint64) {
	tx.tx.OpenForUpdate(v.h)
	tx.tx.LogForUndoWord(v.h, 0)
	tx.tx.StoreWord(v.h, 0, val)
}

// RefVar is a transactional cell holding a reference to a Record (or nil).
type RefVar struct {
	tm *TM
	h  engine.Handle
}

// NewRefVar creates a RefVar holding nil.
func (tm *TM) NewRefVar() *RefVar {
	return &RefVar{tm: tm, h: tm.eng.NewObj(0, 1)}
}

// Get reads the referenced record (nil if unset).
func (r *RefVar) Get(tx *Tx) *Record {
	tx.tx.OpenForRead(r.h)
	h := tx.tx.LoadRef(r.h, 0)
	if h == nil {
		return nil
	}
	return &Record{tm: r.tm, h: h}
}

// Set stores a record reference (rec may be nil).
func (r *RefVar) Set(tx *Tx, rec *Record) {
	tx.tx.OpenForUpdate(r.h)
	tx.tx.LogForUndoRef(r.h, 0)
	if rec == nil {
		tx.tx.StoreRef(r.h, 0, nil)
	} else {
		tx.tx.StoreRef(r.h, 0, rec.h)
	}
}

// Record is a transactional object with a fixed number of scalar and
// reference fields — the general building block for linked structures.
type Record struct {
	tm *TM
	h  engine.Handle
}

// NewRecord creates a shared record outside any transaction.
func (tm *TM) NewRecord(nwords, nrefs int) *Record {
	return &Record{tm: tm, h: tm.eng.NewObj(nwords, nrefs)}
}

// Alloc creates a transaction-local record: until the transaction commits it
// is private, and all barriers on it are skipped (the paper's
// newly-allocated-object optimization).
func (tx *Tx) Alloc(nwords, nrefs int) *Record {
	return &Record{tm: tx.tm, h: tx.tx.Alloc(nwords, nrefs)}
}

// Handle exposes the record's engine handle for decomposed-API use.
func (r *Record) Handle() engine.Handle { return r.h }

// OpenForRead declares upcoming reads of the record's fields.
func (r *Record) OpenForRead(tx *Tx) { tx.tx.OpenForRead(r.h) }

// OpenForUpdate acquires the record for writing.
func (r *Record) OpenForUpdate(tx *Tx) { tx.tx.OpenForUpdate(r.h) }

// Word reads scalar field i. The record must be open.
func (r *Record) Word(tx *Tx, i int) uint64 { return tx.tx.LoadWord(r.h, i) }

// SetWord writes scalar field i, undo-logging it first. The record must be
// open for update.
func (r *Record) SetWord(tx *Tx, i int, v uint64) {
	tx.tx.LogForUndoWord(r.h, i)
	tx.tx.StoreWord(r.h, i, v)
}

// Ref reads reference field i (nil if unset). The record must be open.
func (r *Record) Ref(tx *Tx, i int) *Record {
	h := tx.tx.LoadRef(r.h, i)
	if h == nil {
		return nil
	}
	return &Record{tm: r.tm, h: h}
}

// SetRef writes reference field i, undo-logging it first. The record must be
// open for update.
func (r *Record) SetRef(tx *Tx, i int, v *Record) {
	tx.tx.LogForUndoRef(r.h, i)
	if v == nil {
		tx.tx.StoreRef(r.h, i, nil)
		return
	}
	tx.tx.StoreRef(r.h, i, v.h)
}

// Same reports whether two records are the same object.
func (r *Record) Same(o *Record) bool {
	if r == nil || o == nil {
		return r == nil && o == nil
	}
	return r.h == o.h
}

func mustRun(tm *TM, body func(tx *Tx) error) {
	if err := tm.Atomic(body); err != nil {
		panic("memtx: initialization transaction failed: " + err.Error())
	}
}
