package memtx

import (
	"errors"
	"sync"
	"testing"
)

func designs() map[string]*TM {
	return map[string]*TM{
		"direct":  New(),
		"bufword": New(WithDesign(BufferedWord)),
		"bufobj":  New(WithDesign(BufferedObject)),
	}
}

func TestVarAcrossDesigns(t *testing.T) {
	for name, tm := range designs() {
		t.Run(name, func(t *testing.T) {
			v := tm.NewVar(41)
			err := tm.Atomic(func(tx *Tx) error {
				v.Set(tx, v.Get(tx)+1)
				return nil
			})
			if err != nil {
				t.Fatalf("Atomic: %v", err)
			}
			var got uint64
			if err := tm.ReadOnly(func(tx *Tx) error {
				got = v.Get(tx)
				return nil
			}); err != nil {
				t.Fatalf("ReadOnly: %v", err)
			}
			if got != 42 {
				t.Fatalf("v = %d, want 42", got)
			}
		})
	}
}

func TestAtomicErrorAborts(t *testing.T) {
	tm := New()
	v := tm.NewVar(0)
	wantErr := errors.New("boom")
	err := tm.Atomic(func(tx *Tx) error {
		v.Set(tx, 99)
		return wantErr
	})
	if err != wantErr {
		t.Fatalf("Atomic error = %v, want %v", err, wantErr)
	}
	_ = tm.ReadOnly(func(tx *Tx) error {
		if got := v.Get(tx); got != 0 {
			t.Fatalf("v = %d after aborted txn, want 0", got)
		}
		return nil
	})
}

func TestAbortError(t *testing.T) {
	tm := New()
	v := tm.NewVar(5)
	err := tm.Atomic(func(tx *Tx) error {
		if v.Get(tx) < 10 {
			return AbortError
		}
		v.Set(tx, 0)
		return nil
	})
	if err != AbortError {
		t.Fatalf("err = %v, want AbortError", err)
	}
}

func TestRecordLinkedStructure(t *testing.T) {
	for name, tm := range designs() {
		t.Run(name, func(t *testing.T) {
			head := tm.NewRefVar()
			// Push three nodes.
			for i := uint64(1); i <= 3; i++ {
				err := tm.Atomic(func(tx *Tx) error {
					n := tx.Alloc(1, 1)
					n.SetWord(tx, 0, i)
					n.SetRef(tx, 0, head.Get(tx))
					head.Set(tx, n)
					return nil
				})
				if err != nil {
					t.Fatalf("push %d: %v", i, err)
				}
			}
			var sum uint64
			err := tm.ReadOnly(func(tx *Tx) error {
				sum = 0
				for n := head.Get(tx); n != nil; {
					n.OpenForRead(tx)
					sum += n.Word(tx, 0)
					n = n.Ref(tx, 0)
				}
				return nil
			})
			if err != nil {
				t.Fatalf("traverse: %v", err)
			}
			if sum != 6 {
				t.Fatalf("sum = %d, want 6", sum)
			}
		})
	}
}

func TestConcurrentVarIncrements(t *testing.T) {
	for name, tm := range designs() {
		t.Run(name, func(t *testing.T) {
			v := tm.NewVar(0)
			const goroutines = 8
			const perG = 150
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < perG; i++ {
						_ = tm.Atomic(func(tx *Tx) error {
							v.Set(tx, v.Get(tx)+1)
							return nil
						})
					}
				}()
			}
			wg.Wait()
			var got uint64
			_ = tm.ReadOnly(func(tx *Tx) error {
				got = v.Get(tx)
				return nil
			})
			if got != goroutines*perG {
				t.Fatalf("v = %d, want %d", got, goroutines*perG)
			}
		})
	}
}

func TestRecordSame(t *testing.T) {
	tm := New()
	a := tm.NewRecord(1, 0)
	b := tm.NewRecord(1, 0)
	if a.Same(b) {
		t.Fatal("distinct records compare Same")
	}
	if !a.Same(a) {
		t.Fatal("record not Same as itself")
	}
	var nilRec *Record
	if a.Same(nilRec) || !nilRec.Same(nil) {
		t.Fatal("nil handling wrong")
	}
}

func TestStatsExposed(t *testing.T) {
	tm := New()
	v := tm.NewVar(0)
	_ = tm.Atomic(func(tx *Tx) error {
		v.Set(tx, 1)
		return nil
	})
	s := tm.Stats()
	if s.Commits == 0 || s.OpenForUpdate == 0 {
		t.Fatalf("stats not populated: %+v", s)
	}
	if tm.Engine() == nil {
		t.Fatal("Engine() returned nil")
	}
}
