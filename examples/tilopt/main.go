// Tilopt: watch the paper's compiler optimizations eliminate STM barriers.
//
// A small TIL transaction is compiled at every optimization level; the demo
// prints the transformed IR and the static/dynamic barrier counts at each
// level, making the effect of each pass visible:
//
//   - naive:   every load/store carries its own open + undo log;
//   - cse:     redundant opens of the same object disappear;
//   - upgrade: read-opens followed by update-opens become a single update open;
//   - hoist:   loop-invariant opens move to the loop preheader;
//   - full:    barriers on transaction-local allocations and immutable
//     fields disappear entirely.
//
// Run with: go run ./examples/tilopt
package main

import (
	"fmt"

	"memtx/internal/core"
	"memtx/internal/til"
	"memtx/internal/til/interp"
	"memtx/internal/til/parser"
	"memtx/internal/til/passes"
)

const src = `
class Point words=2 refs=0
class Log words=1 refs=1 refclasses=Log
global pt Point
global history Log

# Move the point n times, recording each move in a fresh log node.
atomic func moves(n) {
entry:
  p = global pt
  h = global history
  i = const 0
  one = const 1
  jmp head
head:
  c = lt i n
  br c body done
body:
  x = loadw p 0
  y = loadw p 1
  x2 = add x one
  y2 = add y x2
  storew p 0 x2
  storew p 1 y2
  rec = new Log
  storew rec 0 x2
  prev = loadr h 0
  storer rec 0 prev
  storer h 0 rec
  i = add i one
  jmp head
done:
  x3 = loadw p 0
  ret x3
}
`

func main() {
	for _, level := range passes.Levels {
		m, err := parser.Parse("demo", src)
		if err != nil {
			panic(err)
		}
		res, err := passes.Apply(m, level)
		if err != nil {
			panic(err)
		}
		static := passes.CountBarriers(m)

		// Execute against the direct-update engine and count dynamic
		// barriers.
		prog, err := interp.Load(m, core.New())
		if err != nil {
			panic(err)
		}
		mach := prog.NewMachine()
		v, err := mach.Call("moves", interp.Word(1000))
		if err != nil {
			panic(err)
		}

		fmt.Printf("== level %-7s  static barriers: %2d   dynamic: opens=%-5d undos=%-5d  result=%d\n",
			res.Level, static.Total(),
			mach.Stats.OpensR+mach.Stats.OpensU, mach.Stats.Undos, v.W)
		if level == passes.LevelNaive || level == passes.LevelFull {
			clone := m.Funcs[m.Funcs[m.FuncByName("moves")].Instrumented]
			fmt.Println(til.PrintFunc(m, clone))
		}
	}
}
