// Quickstart: atomic bank transfers with the memtx public API.
//
// Eight goroutines shuffle money between 64 accounts while two auditors
// repeatedly verify, inside read-only transactions, that the total balance is
// conserved — the canonical "composable atomicity" demo for a transactional
// memory.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"

	"memtx"
)

const (
	numAccounts  = 64
	initialFunds = 1_000
	transfers    = 5_000
	workers      = 8
)

func main() {
	tm := memtx.New()

	accounts := make([]*memtx.Var, numAccounts)
	for i := range accounts {
		accounts[i] = tm.NewVar(initialFunds)
	}
	want := uint64(numAccounts * initialFunds)

	audit := func() uint64 {
		var total uint64
		err := tm.ReadOnly(func(tx *memtx.Tx) error {
			total = 0
			for _, acc := range accounts {
				total += acc.Get(tx)
			}
			return nil
		})
		if err != nil {
			log.Fatalf("audit: %v", err)
		}
		return total
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Concurrent auditors: a committed read-only transaction always sees a
	// consistent snapshot, so every observed total must be exact.
	for a := 0; a < 2; a++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			audits := 0
			for {
				select {
				case <-stop:
					fmt.Printf("auditor done after %d consistent audits\n", audits)
					return
				default:
				}
				if got := audit(); got != want {
					log.Fatalf("audit saw inconsistent total %d (want %d)", got, want)
				}
				audits++
			}
		}()
	}

	var transferred sync.WaitGroup
	for w := 0; w < workers; w++ {
		transferred.Add(1)
		go func(seed int64) {
			defer transferred.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < transfers; i++ {
				from, to := rng.Intn(numAccounts), rng.Intn(numAccounts)
				amount := uint64(rng.Intn(50))
				err := tm.Atomic(func(tx *memtx.Tx) error {
					balance := accounts[from].Get(tx)
					if balance < amount {
						return nil // insufficient funds: commit no changes
					}
					accounts[from].Set(tx, balance-amount)
					accounts[to].Set(tx, accounts[to].Get(tx)+amount)
					return nil
				})
				if err != nil {
					log.Fatalf("transfer: %v", err)
				}
			}
		}(int64(w))
	}
	transferred.Wait()
	close(stop)
	wg.Wait()

	fmt.Printf("final total: %d (want %d)\n", audit(), want)
	s := tm.Stats()
	fmt.Printf("engine stats: %d commits, %d aborts (%.1f%% abort rate)\n",
		s.Commits, s.Aborts, 100*float64(s.Aborts)/float64(s.Starts))
}
