// Booking: multi-structure atomic composition on the decomposed API.
//
// A tiny reservation service keeps three shared structures — a hash map of
// resource inventory, a BST of customer balances keyed by id, and a sorted
// list of resources that ever sold out. A booking must atomically:
//
//  1. check the resource has stock and the customer has funds,
//  2. decrement stock, debit the customer, and
//  3. record the resource in the sold-out list when stock hits zero.
//
// With locks this composition requires a careful global order across three
// structures; with the STM it is just one transaction. Invariants are
// audited concurrently by read-only transactions: total money and total
// stock movements must always reconcile.
//
// Run with: go run ./examples/booking
package main

import (
	"fmt"
	"log"
	"sync"

	"memtx/internal/core"
	"memtx/internal/engine"
	"memtx/internal/txds"
)

const (
	resources    = 64
	customers    = 32
	initialStock = 50
	initialFunds = 4_000
	price        = 7
	workers      = 8
	bookingsPerW = 2_000
)

type service struct {
	eng      engine.Engine
	stock    *txds.HashMap    // resource id -> units left
	balances *txds.BST        // customer id -> funds
	soldOut  *txds.SortedList // resource ids that hit zero
}

func newService(eng engine.Engine) *service {
	s := &service{
		eng:      eng,
		stock:    txds.NewHashMap(eng, 128),
		balances: txds.NewBST(eng),
		soldOut:  txds.NewSortedList(eng),
	}
	for r := uint64(0); r < resources; r++ {
		s.stock.PutAtomic(r, initialStock)
	}
	for c := uint64(0); c < customers; c++ {
		s.balances.InsertAtomic(c, initialFunds)
	}
	return s
}

// book attempts one reservation; it returns false (leaving no trace) when
// stock or funds are insufficient.
func (s *service) book(resource, customer uint64) (bool, error) {
	booked := false
	err := engine.Run(s.eng, func(tx engine.Txn) error {
		booked = false
		units, ok := s.stock.Get(tx, resource)
		if !ok || units == 0 {
			return nil
		}
		funds, ok := s.balances.Get(tx, customer)
		if !ok || funds < price {
			return nil
		}
		s.stock.Put(tx, resource, units-1)
		s.balances.Insert(tx, customer, funds-price)
		if units-1 == 0 {
			s.soldOut.Insert(tx, resource)
		}
		booked = true
		return nil
	})
	return booked, err
}

// audit verifies, in one consistent snapshot, that money and stock reconcile
// with the number of successful bookings implied by them.
func (s *service) audit() error {
	return engine.RunReadOnly(s.eng, func(tx engine.Txn) error {
		var fundsTotal, stockTotal uint64
		for c := uint64(0); c < customers; c++ {
			f, _ := s.balances.Get(tx, c)
			fundsTotal += f
		}
		for r := uint64(0); r < resources; r++ {
			u, _ := s.stock.Get(tx, r)
			stockTotal += u
		}
		soldUnits := resources*initialStock - stockTotal
		spent := customers*initialFunds - fundsTotal
		if spent != soldUnits*price {
			return fmt.Errorf("audit mismatch: %d spent but %d units sold (price %d)",
				spent, soldUnits, price)
		}
		return nil
	})
}

func main() {
	svc := newService(core.New())

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // continuous auditor
		defer wg.Done()
		n := 0
		for {
			select {
			case <-stop:
				fmt.Printf("auditor: %d consistent audits\n", n)
				return
			default:
			}
			if err := svc.audit(); err != nil {
				log.Fatal(err)
			}
			n++
		}
	}()

	var booked, rejected uint64
	var mu sync.Mutex
	var bookers sync.WaitGroup
	for w := 0; w < workers; w++ {
		bookers.Add(1)
		go func(seed uint64) {
			defer bookers.Done()
			rng := seed*0x9E3779B97F4A7C15 | 1
			next := func() uint64 {
				rng ^= rng >> 12
				rng ^= rng << 25
				rng ^= rng >> 27
				return rng * 0x2545F4914F6CDD1D
			}
			var ok, no uint64
			for i := 0; i < bookingsPerW; i++ {
				done, err := svc.book(next()%resources, next()%customers)
				if err != nil {
					log.Fatalf("book: %v", err)
				}
				if done {
					ok++
				} else {
					no++
				}
			}
			mu.Lock()
			booked += ok
			rejected += no
			mu.Unlock()
		}(uint64(w + 1))
	}
	bookers.Wait()
	close(stop)
	wg.Wait()

	if err := svc.audit(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bookings: %d ok, %d rejected\n", booked, rejected)
	fmt.Printf("sold-out resources: %d of %d\n", svc.soldOut.LenAtomic(), resources)
	s := svc.eng.Stats()
	fmt.Printf("engine: %d commits, %d aborts (%.2f%%)\n",
		s.Commits, s.Aborts, 100*float64(s.Aborts)/float64(s.Starts))
}
