// Wordcount: concurrent aggregation into a transactional hash map using the
// decomposed API via internal/txds.
//
// Workers tokenize chunks of a synthetic corpus and increment per-word
// counters in a shared transactional hash map; because each increment is a
// read-modify-write transaction, no updates are lost and no locks appear in
// user code. A final read-only transaction extracts the totals.
//
// Run with: go run ./examples/wordcount
package main

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"memtx/internal/core"
	"memtx/internal/engine"
	"memtx/internal/txds"
)

// The corpus is a repeated passage, so expected counts are exact multiples.
const passage = `the quick brown fox jumps over the lazy dog
the dog barks and the fox runs away over the hill`

const repeats = 400

func main() {
	eng := core.New()
	counts := txds.NewHashMap(eng, 256)

	// Intern words to integer keys (the map is uint64 -> uint64).
	words := strings.Fields(strings.ReplaceAll(passage, "\n", " "))
	ids := map[string]uint64{}
	names := []string{}
	for _, w := range words {
		if _, ok := ids[w]; !ok {
			ids[w] = uint64(len(names))
			names = append(names, w)
		}
	}

	// Shard the corpus across workers.
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			for rep := shard; rep < repeats; rep += workers {
				for _, word := range words {
					id := ids[word]
					// One transaction per increment: read-modify-write.
					err := engine.Run(eng, func(tx engine.Txn) error {
						cur, _ := counts.Get(tx, id)
						counts.Put(tx, id, cur+1)
						return nil
					})
					if err != nil {
						panic(err)
					}
				}
			}
		}(w)
	}
	wg.Wait()

	// Extract results in one consistent read-only snapshot.
	type wc struct {
		word  string
		count uint64
	}
	var results []wc
	err := engine.RunReadOnly(eng, func(tx engine.Txn) error {
		results = results[:0]
		for word, id := range ids {
			c, _ := counts.Get(tx, id)
			results = append(results, wc{word, c})
		}
		return nil
	})
	if err != nil {
		panic(err)
	}
	sort.Slice(results, func(i, j int) bool {
		if results[i].count != results[j].count {
			return results[i].count > results[j].count
		}
		return results[i].word < results[j].word
	})

	fmt.Println("top words:")
	for _, r := range results[:5] {
		fmt.Printf("  %-6s %6d\n", r.word, r.count)
	}

	// Verify against a sequential count.
	expect := map[string]uint64{}
	for _, w := range words {
		expect[w] += repeats
	}
	for _, r := range results {
		if expect[r.word] != r.count {
			panic(fmt.Sprintf("count mismatch for %q: %d != %d", r.word, r.count, expect[r.word]))
		}
	}
	s := eng.Stats()
	fmt.Printf("verified %d distinct words; %d commits, %d aborts\n",
		len(results), s.Commits, s.Aborts)
}
