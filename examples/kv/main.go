// Quickstart for the stmkvd serving layer, fully in-process: build a
// sharded transactional store, serve it on a loopback TCP listener, and
// drive it with the pipelining protocol client — including a multi-key
// TRANSFER that is atomic across shards because every shard lives in one
// shared transaction manager.
//
// Run with: go run ./examples/kv
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"time"

	"memtx/internal/kv"
	"memtx/internal/kvload"
	"memtx/internal/server"
)

func main() {
	// A 4-shard store on the direct-update engine, served on a random port.
	store := kv.New(kv.Config{Shards: 4})
	srv := server.New(store, server.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	c, err := kvload.Dial(ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	// Plain key-value traffic. Values are arbitrary bytes.
	if err := c.Set([]byte("greeting"), []byte("hello, stm")); err != nil {
		log.Fatal(err)
	}
	v, _, err := c.Get([]byte("greeting"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("greeting = %q\n", v)

	// Numeric helpers and a cross-key atomic transfer.
	if _, err := c.Incr([]byte("alice"), 100); err != nil {
		log.Fatal(err)
	}
	if ok, err := c.Transfer([]byte("alice"), []byte("bob"), 30); err != nil || !ok {
		log.Fatalf("transfer: ok=%v err=%v", ok, err)
	}
	// MGET reads both balances in one atomic snapshot.
	vals, err := c.MGet([]byte("alice"), []byte("bob"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("alice = %s, bob = %s (sum conserved)\n", vals[0], vals[1])

	// Compare-and-set: optimistic concurrency at the client.
	if ok, _ := c.CAS([]byte("greeting"), []byte("hello, stm"), []byte("bye")); !ok {
		log.Fatal("CAS should have matched")
	}

	// Drain: in-flight requests finish, then the server exits cleanly.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	<-done
	st := store.Stats()
	fmt.Printf("server drained; %d transactions committed, %d ops served\n",
		st.Commits, store.OpCount(kv.OpGet)+store.OpCount(kv.OpSet))
}
