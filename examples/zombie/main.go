// Zombie: the direct-update STM is not opaque — a demonstration and the
// containment mechanisms.
//
// The paper's design lets a doomed ("zombie") transaction read an
// inconsistent snapshot: reads are optimistic and only validated at commit.
// This demo builds a pair of variables kept equal by an updater thread, and
// a reader that deliberately checks the invariant mid-transaction:
//
//   - occasionally the reader observes a != b (a zombie read) because the
//     updater committed between the two loads;
//   - every such transaction FAILS validation and retries, so no
//     inconsistency ever commits;
//   - Tx.Validate gives long transactions a way to detect doom early, which
//     is how the TIL interpreter contains zombie loops and faults.
//
// Run with: go run ./examples/zombie
package main

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"memtx"
)

func main() {
	tm := memtx.New()
	a := tm.NewVar(0)
	b := tm.NewVar(0)

	var zombiesSeen, committedReads, inconsistentCommits atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Updater: keeps the invariant a == b, bumping both in one transaction.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_ = tm.Atomic(func(tx *memtx.Tx) error {
				v := a.Get(tx) + 1
				a.Set(tx, v)
				b.Set(tx, v)
				return nil
			})
		}
	}()

	// Readers: load a, then b, and inspect the snapshot mid-transaction.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				err := tm.Atomic(func(tx *memtx.Tx) error {
					av := a.Get(tx)
					bv := b.Get(tx)
					if av != bv {
						// Zombie observation: we must be doomed. Validate
						// confirms it without waiting for commit.
						zombiesSeen.Add(1)
						if tx.Validate() == nil {
							// Validation passed with a broken invariant:
							// that would be a real atomicity bug.
							inconsistentCommits.Add(1)
						}
						return nil // proceed to commit; it must conflict
					}
					return nil
				})
				if err == nil {
					committedReads.Add(1)
				}
			}
		}()
	}

	// Run until we've either witnessed some zombies or done enough work.
	for committedReads.Load() < 200_000 && zombiesSeen.Load() < 25 {
		runtime.Gosched()
	}
	close(stop)
	wg.Wait()

	fmt.Printf("committed consistent reads: %d\n", committedReads.Load())
	fmt.Printf("zombie observations (inconsistent mid-txn views): %d\n", zombiesSeen.Load())
	fmt.Printf("inconsistent views that passed validation: %d (must be 0)\n", inconsistentCommits.Load())
	if inconsistentCommits.Load() != 0 {
		panic("opacity violation leaked through validation")
	}
	s := tm.Stats()
	fmt.Printf("engine: %d commits, %d aborts\n", s.Commits, s.Aborts)
}
