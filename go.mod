module memtx

go 1.23
