package memtx_test

import (
	"fmt"

	"memtx"
)

// The basic atomic read-modify-write: the body re-executes on conflict, so
// the increment is exact under any concurrency.
func ExampleTM_Atomic() {
	tm := memtx.New()
	counter := tm.NewVar(41)

	_ = tm.Atomic(func(tx *memtx.Tx) error {
		counter.Set(tx, counter.Get(tx)+1)
		return nil
	})

	_ = tm.ReadOnly(func(tx *memtx.Tx) error {
		fmt.Println(counter.Get(tx))
		return nil
	})
	// Output: 42
}

// Multi-variable invariants: a transfer either happens entirely or not at
// all, and a read-only transaction always sees a consistent total.
func ExampleTM_ReadOnly() {
	tm := memtx.New()
	a := tm.NewVar(70)
	b := tm.NewVar(30)

	_ = tm.Atomic(func(tx *memtx.Tx) error {
		a.Set(tx, a.Get(tx)-25)
		b.Set(tx, b.Get(tx)+25)
		return nil
	})

	_ = tm.ReadOnly(func(tx *memtx.Tx) error {
		fmt.Println(a.Get(tx) + b.Get(tx))
		return nil
	})
	// Output: 100
}

// Records build linked structures; Alloc inside the transaction creates
// transaction-local objects that need no barriers until they are published.
func ExampleTx_Alloc() {
	tm := memtx.New()
	head := tm.NewRefVar()

	_ = tm.Atomic(func(tx *memtx.Tx) error {
		node := tx.Alloc(1, 1) // one word, one ref
		node.SetWord(tx, 0, 7)
		node.SetRef(tx, 0, head.Get(tx))
		head.Set(tx, node)
		return nil
	})

	_ = tm.ReadOnly(func(tx *memtx.Tx) error {
		n := head.Get(tx)
		n.OpenForRead(tx)
		fmt.Println(n.Word(tx, 0))
		return nil
	})
	// Output: 7
}

// Retry blocks the transaction until another commit changes the world —
// here, a tiny hand-off channel built from one Var.
func ExampleTM_AtomicWait() {
	tm := memtx.New()
	slot := tm.NewVar(0)

	done := make(chan uint64)
	go func() {
		var got uint64
		_ = tm.AtomicWait(func(tx *memtx.Tx) error {
			got = slot.Get(tx)
			if got == 0 {
				memtx.Retry(tx) // sleep until a commit, then re-run
			}
			slot.Set(tx, 0)
			return nil
		})
		done <- got
	}()

	_ = tm.Atomic(func(tx *memtx.Tx) error {
		slot.Set(tx, 99)
		return nil
	})
	fmt.Println(<-done)
	// Output: 99
}

// OrElse composes alternatives: take from whichever source is ready,
// rolling back the first alternative's effects when it retries.
func ExampleTx_OrElse() {
	tm := memtx.New()
	primary := tm.NewVar(0) // empty
	fallback := tm.NewVar(5)

	var got uint64
	_ = tm.AtomicWait(func(tx *memtx.Tx) error {
		return tx.OrElse(
			func(tx *memtx.Tx) error {
				v := primary.Get(tx)
				if v == 0 {
					memtx.Retry(tx)
				}
				got = v
				return nil
			},
			func(tx *memtx.Tx) error {
				got = fallback.Get(tx)
				return nil
			},
		)
	})
	fmt.Println(got)
	// Output: 5
}

// The baseline designs are drop-in replacements behind the same API.
func ExampleWithDesign() {
	tm := memtx.New(memtx.WithDesign(memtx.BufferedWord))
	v := tm.NewVar(1)
	_ = tm.Atomic(func(tx *memtx.Tx) error {
		v.Set(tx, v.Get(tx)*2)
		return nil
	})
	_ = tm.ReadOnly(func(tx *memtx.Tx) error {
		fmt.Println(v.Get(tx))
		return nil
	})
	// Output: 2
}
