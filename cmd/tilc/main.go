// Command tilc is the TIL "compiler" driver: it parses a TIL module, runs
// the instrumentation and optimization pipeline at a chosen level, and can
// dump the transformed IR, report static barrier counts, and execute an
// entry function against a chosen STM engine with dynamic statistics.
//
// Usage:
//
//	tilc -level full prog.til                     # compile & dump IR
//	tilc -level cse -stats prog.til               # static barrier counts
//	tilc -run main -arg 1000 -engine direct x.til # compile and execute
//	tilc -kernel sieve -level naive -run sieve -arg 2000   # built-in kernel
//
// Levels: naive, cse, upgrade, hoist, full. Engines: raw, direct, wstm,
// ostm.
package main

import (
	"flag"
	"fmt"
	"os"

	"memtx/internal/core"
	"memtx/internal/engine"
	"memtx/internal/ostm"
	"memtx/internal/progs"
	"memtx/internal/rawengine"
	"memtx/internal/til"
	"memtx/internal/til/cfgutil"
	"memtx/internal/til/interp"
	"memtx/internal/til/parser"
	"memtx/internal/til/passes"
	"memtx/internal/wstm"
)

func main() {
	var (
		levelName = flag.String("level", "full", "optimization level: naive|cse|upgrade|hoist|full")
		dump      = flag.Bool("dump", false, "print the module after compilation")
		dot       = flag.String("dot", "", "print the named function's CFG in Graphviz dot syntax")
		stats     = flag.Bool("stats", false, "print static barrier counts and pass results")
		run       = flag.String("run", "", "function to execute after compilation")
		arg       = flag.Uint64("arg", 0, "word argument passed to -run (one per -arg use)")
		engName   = flag.String("engine", "direct", "engine for -run: raw|direct|wstm|ostm")
		kernel    = flag.String("kernel", "", "use a built-in kernel instead of a source file")
	)
	flag.Parse()

	level, ok := levelByName(*levelName)
	if !ok {
		fail("unknown level %q", *levelName)
	}

	var name, src string
	switch {
	case *kernel != "":
		k, ok := progs.ByName(*kernel)
		if !ok {
			fail("unknown kernel %q", *kernel)
		}
		name, src = k.Name, k.Src
	case flag.NArg() == 1:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fail("%v", err)
		}
		name, src = flag.Arg(0), string(data)
	default:
		fail("need exactly one source file or -kernel")
	}

	m, err := parser.Parse(name, src)
	if err != nil {
		fail("%v", err)
	}
	res, err := passes.Apply(m, level)
	if err != nil {
		fail("%v", err)
	}

	if *stats {
		c := passes.CountBarriers(m)
		fmt.Printf("level=%s instrumented=%d\n", res.Level, res.Instrumented)
		fmt.Printf("static barriers: openr=%d openu=%d undo=%d total=%d\n",
			c.OpenR, c.OpenU, c.Undo, c.Total())
		fmt.Printf("pass results: immutable=%d upgraded=%d opensElided=%d undosElided=%d hoisted=%d newobj=%d dce=%d readonlyFuncs=%d\n",
			res.ImmutableElided, res.Upgraded, res.OpensElided, res.UndosElided,
			res.Hoisted, res.NewObjElided, res.DeadRemoved, res.ReadOnlyFuncs)
	}
	if *dump {
		fmt.Print(til.Print(m))
	}
	if *dot != "" {
		fi := m.FuncByName(*dot)
		if fi < 0 {
			fail("no function %q for -dot", *dot)
		}
		fmt.Print(cfgutil.DOT(m, m.Funcs[fi]))
	}

	if *run != "" {
		e, ok := engineByName(*engName)
		if !ok {
			fail("unknown engine %q", *engName)
		}
		p, err := interp.Load(m, e)
		if err != nil {
			fail("%v", err)
		}
		mach := p.NewMachine()
		fn := m.FuncByName(*run)
		if fn < 0 {
			fail("no function %q", *run)
		}
		var args []interp.Value
		for i := 0; i < m.Funcs[fn].NParams; i++ {
			args = append(args, interp.Word(*arg))
		}
		v, err := mach.Call(*run, args...)
		if err != nil {
			fail("run: %v", err)
		}
		fmt.Printf("%s(%d) = %d\n", *run, *arg, v.W)
		fmt.Printf("dynamic: steps=%d opensR=%d opensU=%d undos=%d loads=%d stores=%d txns=%d\n",
			mach.Stats.Steps, mach.Stats.OpensR, mach.Stats.OpensU,
			mach.Stats.Undos, mach.Stats.Loads, mach.Stats.Stores, mach.Stats.Txns)
		es := e.Stats()
		fmt.Printf("engine:  commits=%d aborts=%d readlog=%d undologged=%d filterhits=%d localskips=%d\n",
			es.Commits, es.Aborts, es.ReadLogEntries, es.UndoLogged, es.FilterHits, es.LocalSkips)
	}
}

func levelByName(s string) (passes.Level, bool) {
	for _, l := range passes.Levels {
		if l.String() == s {
			return l, true
		}
	}
	return 0, false
}

func engineByName(s string) (engine.Engine, bool) {
	switch s {
	case "raw":
		return rawengine.New(), true
	case "direct":
		return core.New(), true
	case "wstm":
		return wstm.New(), true
	case "ostm":
		return ostm.New(), true
	}
	return nil, false
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tilc: "+format+"\n", args...)
	os.Exit(1)
}
