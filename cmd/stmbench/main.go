// Command stmbench regenerates the paper's evaluation tables and figures
// (experiments E1..E7 in DESIGN.md).
//
// Usage:
//
//	stmbench                 # run everything at full scale
//	stmbench -e e1,e3        # run selected experiments
//	stmbench -quick          # small parameters (seconds, for smoke runs)
//
// Output is a series of aligned text tables, one per paper table/figure,
// each annotated with the shape the paper reports so results can be compared
// at a glance. EXPERIMENTS.md records a reference run.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"memtx/internal/harness"
)

func main() {
	var (
		exps  = flag.String("e", "all", "comma-separated experiments to run (e1..e7, or 'all')")
		quick = flag.Bool("quick", false, "use small test-scale parameters")
	)
	flag.Parse()

	ids := harness.ExperimentIDs
	if *exps != "all" {
		ids = strings.Split(*exps, ",")
	}
	for _, id := range ids {
		id = strings.TrimSpace(strings.ToLower(id))
		tables, err := harness.Run(id, *quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "stmbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		for _, t := range tables {
			t.Fprint(os.Stdout)
		}
	}
}
