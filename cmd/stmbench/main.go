// Command stmbench regenerates the paper's evaluation tables and figures
// (experiments E1..E7 in DESIGN.md).
//
// Usage:
//
//	stmbench                 # run everything at full scale
//	stmbench -e e1,e3        # run selected experiments
//	stmbench -quick          # small parameters (seconds, for smoke runs)
//	stmbench -e e7 -watch 2s # print live per-interval metrics to stderr
//	stmbench -serve :8080    # expose /metrics (Prometheus) and /stats.json
//	stmbench -benchjson f.json  # write machine-readable perf points and exit
//	stmbench -kvload self    # in-process stmkvd load sweep (designs x shards)
//	stmbench -kvload host:port  # drive a live stmkvd server instead
//
// Output is a series of aligned text tables, one per paper table/figure,
// each annotated with the shape the paper reports so results can be compared
// at a glance. EXPERIMENTS.md records a reference run.
//
// With -serve, the engines each experiment constructs are registered in a
// live registry and served over HTTP while the experiments run; after the
// last experiment the server keeps running (final counter values remain
// scrapable) until interrupted. With -watch, a reporter prints commit
// throughput, per-cause abort counts, and p50/p99 attempt latency for every
// active engine each interval.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"memtx/internal/harness"
	"memtx/internal/obs"
)

func main() {
	var (
		exps      = flag.String("e", "all", "comma-separated experiments to run (e1..e7, or 'all')")
		quick     = flag.Bool("quick", false, "use small test-scale parameters")
		serve     = flag.String("serve", "", "serve live metrics on this address (e.g. :8080) while running")
		pprofFlag = flag.Bool("pprof", false, "with -serve, also expose /debug/pprof/ profiling endpoints")
		watch     = flag.Duration("watch", 0, "print live metrics to stderr at this interval (e.g. 2s)")
		benchJSON = flag.String("benchjson", "", "write per-experiment throughput and allocs/op as JSON to this file, then exit")

		kvAddr         = flag.String("kvload", "", "drive the stmkvd load mix: 'self' for an in-process sweep, or a host:port")
		kvDesigns      = flag.String("kv-designs", "direct,wstm,ostm", "engines to sweep with -kvload self")
		kvShards       = flag.String("kv-shards", "1,4", "shard counts to sweep with -kvload self")
		kvConns        = flag.Int("kv-conns", 4, "client connections per load run")
		kvKeys         = flag.Int("kv-keys", 10000, "GET/SET key-space size")
		kvValSize      = flag.Int("kv-valsize", 64, "SET value size in bytes")
		kvReadFrac     = flag.Float64("kv-readfrac", 0.8, "fraction of GETs in the mix")
		kvTransferFrac = flag.Float64("kv-transferfrac", 0.1, "fraction of two-key TRANSFERs in the mix")
		kvIncrFrac     = flag.Float64("kv-incrfrac", 0, "fraction of INCRs over the counter key space in the mix")
		kvMix          = flag.String("kv-mix", "", "YCSB-style mix presets to sweep (ycsb-a, ycsb-b, ycsb-c; comma-separated; overrides -kv-readfrac/-kv-transferfrac)")
		kvDist         = flag.String("kv-dist", "uniform", "key distributions to sweep: uniform, zipf:THETA, hot:FRAC (comma-separated)")
		kvDuration     = flag.Duration("kv-duration", 5*time.Second, "measurement window per cell")
		kvPipeline     = flag.Int("kv-pipeline", 1, "requests in flight per connection")
		kvBatch        = flag.String("kv-batch", "0", "server read-batch bounds to sweep with -kvload self (0 = server default, -1 = off)")
		kvWriteBatch   = flag.String("kv-write-batch", "0", "server write-batch bounds to sweep with -kvload self (0 = server default, -1 = off)")
		kvCM           = flag.String("kv-cm", "fixed", "contention-management policies to sweep with -kvload self (fixed, adaptive; comma-separated)")
		kvProcs        = flag.String("kv-procs", "0", "GOMAXPROCS values to sweep with -kvload self (0 = leave the process default)")
		kvWALBatch     = flag.String("kv-wal-batch", "-1", "WAL group-commit fsync batches to sweep with -kvload self (-1 = durability off; comma-separated)")
		kvWALQueue     = flag.String("kv-wal-queue", "0", "WAL append-queue sizes to sweep with -kvload self (0 = pipelined default, -1 = legacy buffered appends; comma-separated)")
		kvWALInterval  = flag.Duration("kv-wal-interval", time.Millisecond, "WAL group-commit fsync interval for -kv-wal-batch cells")
		kvMaxInflight  = flag.Int("kv-max-inflight", 0, "self-hosted server transaction-concurrency bound (0 = server default)")

		kvCmdDeadline  = flag.Duration("kv-cmd-deadline", 0, "self-hosted server per-command deadline (0 = unbounded)")
		kvQueueTimeout = flag.Duration("kv-queue-timeout", 0, "self-hosted server shed bound: max wait for a txn slot before BUSY (0 = queue forever)")
		kvVerify       = flag.Bool("kv-verify", false, "audit account-sum conservation after each load run")

		kvChaosSeed     = flag.Uint64("kv-chaos-seed", 1, "fault-injector seed for -kv-chaos-* rates")
		kvChaosAbort    = flag.Int("kv-chaos-abort", 0, "injected abort rate per point, PPM (self cells only)")
		kvChaosDelay    = flag.Int("kv-chaos-delay", 0, "injected delay rate per point, PPM (self cells only)")
		kvChaosPanic    = flag.Int("kv-chaos-panic", 0, "injected panic rate per point, PPM (self cells only)")
		kvChaosDelayMax = flag.Duration("kv-chaos-delay-max", time.Millisecond, "upper bound on each injected delay")
	)
	flag.Parse()

	if *kvAddr != "" {
		if err := runKVLoad(kvOptions{
			addr:          *kvAddr,
			designs:       *kvDesigns,
			shards:        *kvShards,
			conns:         *kvConns,
			keys:          *kvKeys,
			valSize:       *kvValSize,
			readFrac:      *kvReadFrac,
			transferFrac:  *kvTransferFrac,
			incrFrac:      *kvIncrFrac,
			mixes:         *kvMix,
			dists:         *kvDist,
			duration:      *kvDuration,
			pipeline:      *kvPipeline,
			batches:       *kvBatch,
			writeBatches:  *kvWriteBatch,
			cms:           *kvCM,
			procs:         *kvProcs,
			walBatches:    *kvWALBatch,
			walQueues:     *kvWALQueue,
			walInterval:   *kvWALInterval,
			maxInflight:   *kvMaxInflight,
			benchJSON:     *benchJSON,
			quick:         *quick,
			cmdDeadline:   *kvCmdDeadline,
			queueTimeout:  *kvQueueTimeout,
			verify:        *kvVerify,
			chaosSeed:     *kvChaosSeed,
			chaosAbort:    *kvChaosAbort,
			chaosDelay:    *kvChaosDelay,
			chaosPanic:    *kvChaosPanic,
			chaosDelayMax: *kvChaosDelayMax,
		}); err != nil {
			fmt.Fprintf(os.Stderr, "stmbench: kvload: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *benchJSON != "" {
		report, err := harness.BenchJSON(*quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "stmbench: benchjson: %v\n", err)
			os.Exit(1)
		}
		f, err := os.Create(*benchJSON)
		if err != nil {
			fmt.Fprintf(os.Stderr, "stmbench: benchjson: %v\n", err)
			os.Exit(1)
		}
		if err := report.WriteJSON(f); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "stmbench: benchjson: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "stmbench: wrote %d bench points to %s\n", len(report.Results), *benchJSON)
		return
	}

	serving := *serve != "" || *watch > 0
	if serving {
		reg := obs.NewRegistry()
		harness.SetRegistry(reg)
		if *serve != "" {
			handler := reg.Handler()
			what := "/metrics and /stats.json"
			if *pprofFlag {
				handler = obs.DebugHandler(handler)
				what += " and /debug/pprof/"
			}
			srv := &http.Server{Addr: *serve, Handler: handler}
			go func() {
				if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
					fmt.Fprintf(os.Stderr, "stmbench: serve: %v\n", err)
					os.Exit(1)
				}
			}()
			fmt.Fprintf(os.Stderr, "stmbench: serving %s on %s\n", what, *serve)
		}
		if *watch > 0 {
			stop := harness.StartWatch(os.Stderr, *watch)
			defer stop()
		}
	}

	ids := harness.ExperimentIDs
	if *exps != "all" {
		ids = strings.Split(*exps, ",")
	}
	for _, id := range ids {
		id = strings.TrimSpace(strings.ToLower(id))
		tables, err := harness.Run(id, *quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "stmbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		for _, t := range tables {
			t.Fprint(os.Stdout)
		}
	}

	if *serve != "" {
		fmt.Fprintf(os.Stderr, "stmbench: experiments done; still serving on %s (Ctrl-C to exit)\n", *serve)
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt)
		<-ch
	}
}
