package main

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"memtx"
	"memtx/internal/chaos"
	"memtx/internal/harness"
	"memtx/internal/kvload"
)

// kvOptions carries the -kv* flag values into the kvload runner.
type kvOptions struct {
	addr         string // "self" or host:port
	designs      string // comma-separated, only for self sweeps
	shards       string // comma-separated, only for self sweeps
	conns        int
	keys         int
	valSize      int
	readFrac     float64
	transferFrac float64
	incrFrac     float64
	mixes        string // comma-separated YCSB-style presets; empty = explicit fractions
	dists        string // comma-separated key distributions
	duration     time.Duration
	pipeline     int
	batches      string // comma-separated MaxBatch values, only for self sweeps
	writeBatches string // comma-separated MaxWriteBatch values, only for self sweeps
	cms          string // comma-separated CM policies, only for self sweeps
	procs        string // comma-separated GOMAXPROCS values, only for self sweeps
	walBatches   string // comma-separated WAL fsync batches (-1 = off), only for self sweeps
	walQueues    string // comma-separated WAL append-queue sizes (0 = pipelined default, -1 = legacy buffered), only for self sweeps
	walInterval  time.Duration
	maxInflight  int // self-hosted server txn-concurrency bound (0 = default)
	benchJSON    string
	quick        bool

	cmdDeadline   time.Duration
	queueTimeout  time.Duration
	verify        bool
	chaosSeed     uint64
	chaosAbort    int
	chaosDelay    int
	chaosPanic    int
	chaosDelayMax time.Duration
}

func (o kvOptions) loadOptions() kvload.Options {
	lo := kvload.Options{
		Conns:        o.conns,
		Keys:         o.keys,
		ValueSize:    o.valSize,
		ReadFrac:     o.readFrac,
		TransferFrac: o.transferFrac,
		IncrFrac:     o.incrFrac,
		Duration:     o.duration,
		Pipeline:     o.pipeline,
		CmdDeadline:  o.cmdDeadline,
		QueueTimeout: o.queueTimeout,
		Verify:       o.verify,
		WALInterval:  o.walInterval,
		MaxInflight:  o.maxInflight,
	}
	if o.chaosAbort > 0 || o.chaosDelay > 0 || o.chaosPanic > 0 {
		cfg := chaos.Uniform(o.chaosSeed,
			uint32(o.chaosAbort), uint32(o.chaosDelay), uint32(o.chaosPanic), o.chaosDelayMax)
		lo.Chaos = &cfg
	}
	if o.quick {
		lo.Duration = 500 * time.Millisecond
		if o.keys == 10000 {
			lo.Keys = 1000
		}
	}
	return lo
}

// runKVLoad drives the stmkvd load mix — in-process across a
// (design, shard-count) grid for "self", or against one live server — and
// prints a throughput/latency table. With -benchjson the same points are
// written as a machine-readable report instead of the experiment grid.
func runKVLoad(o kvOptions) error {
	lo := o.loadOptions()
	dists, err := parseDists(o.dists)
	if err != nil {
		return err
	}
	mixes := []string{""}
	if strings.TrimSpace(o.mixes) != "" {
		mixes = strings.Split(o.mixes, ",")
	}
	var points []kvload.GridPoint

	if o.addr == "self" {
		designs, err := parseDesigns(o.designs)
		if err != nil {
			return err
		}
		shards, err := parseInts("shard count", o.shards)
		if err != nil {
			return err
		}
		batches, err := parseInts("batch bound", o.batches)
		if err != nil {
			return err
		}
		wbatches, err := parseInts("write-batch bound", o.writeBatches)
		if err != nil {
			return err
		}
		procs, err := parseInts("procs", o.procs)
		if err != nil {
			return err
		}
		cms, err := parseCMs(o.cms)
		if err != nil {
			return err
		}
		walBatches, err := parseInts("wal batch", o.walBatches)
		if err != nil {
			return err
		}
		walQueues, err := parseInts("wal queue", o.walQueues)
		if err != nil {
			return err
		}
		sw := kvload.Sweep{
			Designs:      designs,
			Shards:       shards,
			Batches:      batches,
			Procs:        procs,
			Dists:        dists,
			CMs:          cms,
			WriteBatches: wbatches,
			WALBatches:   walBatches,
			WALQueues:    walQueues,
		}
		// The mix presets rewrite the operation fractions, so they sweep
		// here as an outer loop over otherwise-identical grids.
		for _, mix := range mixes {
			mlo := lo
			if m := strings.TrimSpace(mix); m != "" {
				if err := mlo.ApplyMix(m); err != nil {
					return err
				}
			}
			ps, err := kvload.RunSweep(sw, mlo)
			if err != nil {
				return err
			}
			points = append(points, ps...)
		}
	} else {
		lo.Addr = o.addr
		lo.Dist = dists[0]
		if m := strings.TrimSpace(mixes[0]); m != "" {
			if err := lo.ApplyMix(m); err != nil {
				return err
			}
		}
		if err := kvload.Preload(lo); err != nil {
			return fmt.Errorf("preload %s: %w", o.addr, err)
		}
		res, err := kvload.Run(lo)
		if err != nil {
			return err
		}
		if lo.Verify {
			if err := kvload.VerifySum(lo); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "stmbench: kvload: account sum verified against %s\n", o.addr)
		}
		points = []kvload.GridPoint{{Design: "remote", Shards: 0, Dist: lo.Dist.String(), Mix: lo.Mix, Result: res}}
	}

	printKVTable(points, lo)

	if o.benchJSON != "" {
		return writeKVBenchJSON(o.benchJSON, points, lo, o.quick)
	}
	return nil
}

func parseDists(s string) ([]kvload.Dist, error) {
	var out []kvload.Dist
	for _, f := range strings.Split(s, ",") {
		d, err := kvload.ParseDist(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	return out, nil
}

func parseCMs(s string) ([]memtx.CMPolicy, error) {
	var out []memtx.CMPolicy
	for _, f := range strings.Split(s, ",") {
		p, err := memtx.ParseCMPolicy(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

func parseDesigns(s string) ([]memtx.Design, error) {
	var out []memtx.Design
	for _, name := range strings.Split(s, ",") {
		d, err := memtx.ParseDesign(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	return out, nil
}

func parseInts(what, s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("bad %s %q", what, f)
		}
		out = append(out, n)
	}
	return out, nil
}

// batchLabel renders a GridPoint.MaxBatch value for tables and kernels:
// the server default, an explicit bound, or batching off.
func batchLabel(b int) string {
	switch {
	case b == 0:
		return "def"
	case b < 0:
		return "off"
	default:
		return strconv.Itoa(b)
	}
}

func printKVTable(points []kvload.GridPoint, lo kvload.Options) {
	t := &harness.Table{
		ID: "kvload",
		Title: fmt.Sprintf("kvload: %d conns, pipeline %d, %.0f%% GET / %.0f%% TRANSFER / %.0f%% INCR / rest SET",
			lo.Conns, lo.Pipeline, 100*lo.ReadFrac, 100*lo.TransferFrac, 100*lo.IncrFrac),
		Header: []string{"design", "shards", "dist", "mix", "cm", "batch", "wbatch", "wal", "walq", "procs", "ops", "ops/sec", "p50(us)", "p99(us)", "errs", "busy", "reconn", "commits", "rbatches", "fallbacks", "wbatches", "wfall", "fsyncs", "grp", "cmdefer", "ewma(ppm)"},
	}
	for _, p := range points {
		shards := "-"
		if p.Shards > 0 {
			shards = strconv.Itoa(p.Shards)
		}
		procs := "-"
		if p.Procs > 0 {
			procs = strconv.Itoa(p.Procs)
		}
		mix := p.Mix
		if mix == "" {
			mix = "-"
		}
		cm := p.CM
		if cm == "" {
			cm = "-"
		}
		wal := "off"
		if p.WALBatch > 0 {
			wal = strconv.Itoa(p.WALBatch)
		}
		// Append-pipeline setting: "pipe" is the pipelined default queue,
		// "buf" the legacy write-under-the-shard-lock path.
		walq := "-"
		if p.WALBatch > 0 {
			switch {
			case p.WALQueue < 0:
				walq = "buf"
			case p.WALQueue == 0:
				walq = "pipe"
			default:
				walq = strconv.Itoa(p.WALQueue)
			}
		}
		// Achieved group-commit amortization: records made durable per fsync.
		grp := "-"
		if p.WALFsyncs > 0 {
			grp = fmt.Sprintf("%.1f", float64(p.WALGroupRecs)/float64(p.WALFsyncs))
		}
		t.AddRow(
			p.Design,
			shards,
			p.Dist,
			mix,
			cm,
			batchLabel(p.MaxBatch),
			batchLabel(p.MaxWriteBatch),
			wal,
			walq,
			procs,
			strconv.FormatUint(p.Result.Ops, 10),
			fmt.Sprintf("%.0f", p.Result.Throughput),
			fmt.Sprintf("%.1f", float64(p.Result.RTT.Quantile(0.5))/1e3),
			fmt.Sprintf("%.1f", float64(p.Result.RTT.Quantile(0.99))/1e3),
			strconv.FormatUint(p.Result.Errors, 10),
			strconv.FormatUint(p.Result.Busy, 10),
			strconv.FormatUint(p.Result.Reconnects, 10),
			strconv.FormatUint(p.CommittedTxns, 10),
			strconv.FormatUint(p.ReadBatches, 10),
			strconv.FormatUint(p.BatchFallbacks, 10),
			strconv.FormatUint(p.WriteBatches, 10),
			strconv.FormatUint(p.WriteBatchFallbacks, 10),
			strconv.FormatUint(p.WALFsyncs, 10),
			grp,
			strconv.FormatUint(p.CMStats.KarmaDefers, 10),
			strconv.FormatUint(p.CMStats.AbortEWMAPpm, 10),
		)
	}
	t.Fprint(os.Stdout)
}

func writeKVBenchJSON(path string, points []kvload.GridPoint, lo kvload.Options, quick bool) error {
	report := harness.NewBenchReport(quick)
	for _, p := range points {
		nsPerOp := 0.0
		if p.Result.Throughput > 0 {
			nsPerOp = 1e9 / p.Result.Throughput
		}
		// The kernel string is the baseline-matching key, so defaults — the
		// explicit-fraction mix spelling, uniform keys, fixed CM, server
		// default batching — keep the historical spelling, and only
		// non-default sweep values grow a segment.
		mix := fmt.Sprintf("r%.2f-t%.2f", lo.ReadFrac, lo.TransferFrac)
		if p.Mix != "" {
			mix = p.Mix
		}
		if lo.IncrFrac > 0 {
			mix += fmt.Sprintf("-i%.2f", lo.IncrFrac)
		}
		cell := fmt.Sprintf("mix/%s/conns%d/pipe%d/shards%d", mix, lo.Conns, lo.Pipeline, p.Shards)
		if p.Dist != "" && p.Dist != "uniform" {
			cell += "/dist-" + p.Dist
		}
		if p.CM != "" && p.CM != "fixed" {
			cell += "/cm-" + p.CM
		}
		if p.MaxBatch != 0 {
			cell += "/batch" + batchLabel(p.MaxBatch)
		}
		if p.MaxWriteBatch != 0 {
			cell += "/wbatch" + batchLabel(p.MaxWriteBatch)
		}
		if p.WALBatch > 0 {
			cell += fmt.Sprintf("/wal%d", p.WALBatch)
			// The pipelined default keeps the historical /walN spelling so
			// those cells compare against recorded baselines; only explicit
			// queue settings grow a segment ("qbuf" = legacy buffered path).
			switch {
			case p.WALQueue < 0:
				cell += "/qbuf"
			case p.WALQueue > 0:
				cell += fmt.Sprintf("/q%d", p.WALQueue)
			}
		}
		if p.Procs > 0 {
			cell += fmt.Sprintf("/procs%d", p.Procs)
		}
		report.Results = append(report.Results, harness.BenchPoint{
			Experiment: "kvload",
			Kernel:     cell,
			Engine:     p.Design,
			Ops:        p.Result.Ops,
			NsPerOp:    nsPerOp,
			OpsPerSec:  p.Result.Throughput,
			P50Ns:      p.Result.RTT.Quantile(0.5),
			P99Ns:      p.Result.RTT.Quantile(0.99),
		})
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := report.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "stmbench: wrote %d kvload points to %s\n", len(report.Results), path)
	return nil
}
