package main

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"memtx"
	"memtx/internal/chaos"
	"memtx/internal/harness"
	"memtx/internal/kvload"
)

// kvOptions carries the -kv* flag values into the kvload runner.
type kvOptions struct {
	addr         string // "self" or host:port
	designs      string // comma-separated, only for self sweeps
	shards       string // comma-separated, only for self sweeps
	conns        int
	keys         int
	valSize      int
	readFrac     float64
	transferFrac float64
	duration     time.Duration
	pipeline     int
	batches      string // comma-separated MaxBatch values, only for self sweeps
	procs        string // comma-separated GOMAXPROCS values, only for self sweeps
	benchJSON    string
	quick        bool

	cmdDeadline   time.Duration
	queueTimeout  time.Duration
	verify        bool
	chaosSeed     uint64
	chaosAbort    int
	chaosDelay    int
	chaosPanic    int
	chaosDelayMax time.Duration
}

func (o kvOptions) loadOptions() kvload.Options {
	lo := kvload.Options{
		Conns:        o.conns,
		Keys:         o.keys,
		ValueSize:    o.valSize,
		ReadFrac:     o.readFrac,
		TransferFrac: o.transferFrac,
		Duration:     o.duration,
		Pipeline:     o.pipeline,
		CmdDeadline:  o.cmdDeadline,
		QueueTimeout: o.queueTimeout,
		Verify:       o.verify,
	}
	if o.chaosAbort > 0 || o.chaosDelay > 0 || o.chaosPanic > 0 {
		cfg := chaos.Uniform(o.chaosSeed,
			uint32(o.chaosAbort), uint32(o.chaosDelay), uint32(o.chaosPanic), o.chaosDelayMax)
		lo.Chaos = &cfg
	}
	if o.quick {
		lo.Duration = 500 * time.Millisecond
		if o.keys == 10000 {
			lo.Keys = 1000
		}
	}
	return lo
}

// runKVLoad drives the stmkvd load mix — in-process across a
// (design, shard-count) grid for "self", or against one live server — and
// prints a throughput/latency table. With -benchjson the same points are
// written as a machine-readable report instead of the experiment grid.
func runKVLoad(o kvOptions) error {
	lo := o.loadOptions()
	var points []kvload.GridPoint

	if o.addr == "self" {
		designs, err := parseDesigns(o.designs)
		if err != nil {
			return err
		}
		shards, err := parseInts("shard count", o.shards)
		if err != nil {
			return err
		}
		batches, err := parseInts("batch bound", o.batches)
		if err != nil {
			return err
		}
		procs, err := parseInts("procs", o.procs)
		if err != nil {
			return err
		}
		points, err = kvload.RunSelfGrid(designs, shards, batches, procs, lo)
		if err != nil {
			return err
		}
	} else {
		lo.Addr = o.addr
		if err := kvload.Preload(lo); err != nil {
			return fmt.Errorf("preload %s: %w", o.addr, err)
		}
		res, err := kvload.Run(lo)
		if err != nil {
			return err
		}
		if lo.Verify {
			if err := kvload.VerifySum(lo); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "stmbench: kvload: account sum verified against %s\n", o.addr)
		}
		points = []kvload.GridPoint{{Design: "remote", Shards: 0, Result: res}}
	}

	printKVTable(points, lo)

	if o.benchJSON != "" {
		return writeKVBenchJSON(o.benchJSON, points, lo, o.quick)
	}
	return nil
}

func parseDesigns(s string) ([]memtx.Design, error) {
	var out []memtx.Design
	for _, name := range strings.Split(s, ",") {
		d, err := memtx.ParseDesign(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	return out, nil
}

func parseInts(what, s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("bad %s %q", what, f)
		}
		out = append(out, n)
	}
	return out, nil
}

// batchLabel renders a GridPoint.MaxBatch value for tables and kernels:
// the server default, an explicit bound, or batching off.
func batchLabel(b int) string {
	switch {
	case b == 0:
		return "def"
	case b < 0:
		return "off"
	default:
		return strconv.Itoa(b)
	}
}

func printKVTable(points []kvload.GridPoint, lo kvload.Options) {
	t := &harness.Table{
		ID: "kvload",
		Title: fmt.Sprintf("kvload: %d conns, pipeline %d, %.0f%% GET / %.0f%% TRANSFER / rest SET",
			lo.Conns, lo.Pipeline, 100*lo.ReadFrac, 100*lo.TransferFrac),
		Header: []string{"design", "shards", "batch", "procs", "ops", "ops/sec", "p50(us)", "p99(us)", "errs", "busy", "reconn", "commits", "rbatches", "fallbacks"},
	}
	for _, p := range points {
		shards := "-"
		if p.Shards > 0 {
			shards = strconv.Itoa(p.Shards)
		}
		procs := "-"
		if p.Procs > 0 {
			procs = strconv.Itoa(p.Procs)
		}
		t.AddRow(
			p.Design,
			shards,
			batchLabel(p.MaxBatch),
			procs,
			strconv.FormatUint(p.Result.Ops, 10),
			fmt.Sprintf("%.0f", p.Result.Throughput),
			fmt.Sprintf("%.1f", float64(p.Result.RTT.Quantile(0.5))/1e3),
			fmt.Sprintf("%.1f", float64(p.Result.RTT.Quantile(0.99))/1e3),
			strconv.FormatUint(p.Result.Errors, 10),
			strconv.FormatUint(p.Result.Busy, 10),
			strconv.FormatUint(p.Result.Reconnects, 10),
			strconv.FormatUint(p.CommittedTxns, 10),
			strconv.FormatUint(p.ReadBatches, 10),
			strconv.FormatUint(p.BatchFallbacks, 10),
		)
	}
	t.Fprint(os.Stdout)
}

func writeKVBenchJSON(path string, points []kvload.GridPoint, lo kvload.Options, quick bool) error {
	report := harness.NewBenchReport(quick)
	kernel := fmt.Sprintf("mix/r%.2f-t%.2f/conns%d/pipe%d", lo.ReadFrac, lo.TransferFrac, lo.Conns, lo.Pipeline)
	for _, p := range points {
		nsPerOp := 0.0
		if p.Result.Throughput > 0 {
			nsPerOp = 1e9 / p.Result.Throughput
		}
		// The kernel string is the baseline-matching key, so the server's
		// default batching keeps the historical spelling and only explicit
		// sweep values grow a suffix.
		cell := fmt.Sprintf("%s/shards%d", kernel, p.Shards)
		if p.MaxBatch != 0 {
			cell += "/batch" + batchLabel(p.MaxBatch)
		}
		if p.Procs > 0 {
			cell += fmt.Sprintf("/procs%d", p.Procs)
		}
		report.Results = append(report.Results, harness.BenchPoint{
			Experiment: "kvload",
			Kernel:     cell,
			Engine:     p.Design,
			Ops:        p.Result.Ops,
			NsPerOp:    nsPerOp,
			OpsPerSec:  p.Result.Throughput,
			P50Ns:      p.Result.RTT.Quantile(0.5),
			P99Ns:      p.Result.RTT.Quantile(0.99),
		})
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := report.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "stmbench: wrote %d kvload points to %s\n", len(report.Results), path)
	return nil
}
