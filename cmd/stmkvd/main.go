// Command stmkvd serves a sharded transactional key-value store over TCP.
//
// Every command runs as one STM transaction against a single shared
// transaction manager, so multi-key commands (MGET, MSET, TRANSFER) are
// atomic across shards. The wire protocol and command set are documented in
// internal/server.
//
// Usage:
//
//	stmkvd                               # serve on :7070, 16 shards, direct engine
//	stmkvd -addr :7070 -shards 4         # explicit listen address and shard count
//	stmkvd -design wstm                  # pick the STM engine (direct, wstm, ostm)
//	stmkvd -cm adaptive                  # adaptive contention management
//	stmkvd -serve-metrics :8080          # expose /metrics and /stats.json
//	stmkvd -serve-metrics :8080 -pprof   # also expose /debug/pprof/
//	stmkvd -max-batch 0                  # disable read-snapshot batching
//	stmkvd -max-write-batch 0            # disable hot-key write batching
//	stmkvd -cmd-deadline 5ms -queue-timeout 1ms   # bounded commands + load shedding
//	stmkvd -wal-dir /var/lib/stmkvd/wal  # durable: log commits, replay on boot
//	stmkvd -wal-dir wal -wal-fsync-batch 64 -snapshot-every 30s   # tuned group commit
//	stmkvd -chaos-abort 20000 -chaos-seed 42      # deterministic fault injection
//
// The -chaos-* flags arm the internal fault injector (internal/chaos) at a
// uniform per-point rate in parts per million; they exist for robustness
// testing and chaos drills, never for production serving.
//
// SIGINT/SIGTERM starts a graceful drain: the listener closes, in-flight
// requests finish, and the process exits once every connection has flushed
// (bounded by -drain-timeout).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"memtx"
	"memtx/internal/chaos"
	"memtx/internal/kv"
	"memtx/internal/obs"
	"memtx/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", ":7070", "TCP listen address")
		shards       = flag.Int("shards", 16, "number of store shards (rounded up to a power of two)")
		buckets      = flag.Int("buckets", 1024, "hash buckets per shard (rounded up to a power of two)")
		design       = flag.String("design", "direct", "STM engine: direct, wstm, or ostm")
		cmPolicy     = flag.String("cm", "fixed", "contention management policy: fixed or adaptive")
		maxInflight  = flag.Int("max-inflight", 128, "max concurrently executing transactions (0 = default)")
		maxBatch     = flag.Int("max-batch", server.DefaultMaxBatch, "max pipelined read-only commands coalesced into one snapshot transaction (0 = off)")
		maxWBatch    = flag.Int("max-write-batch", server.DefaultMaxWriteBatch, "max pipelined same-shard SET/INCR commands coalesced into one write transaction (0 = off)")
		serveMetrics = flag.String("serve-metrics", "", "serve /metrics and /stats.json on this address (e.g. :8080)")
		pprofFlag    = flag.Bool("pprof", false, "with -serve-metrics, also expose /debug/pprof/ profiling endpoints")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "max time to wait for in-flight requests on shutdown")

		cmdDeadline  = flag.Duration("cmd-deadline", 0, "per-command transactional deadline; past it the command gets an ERR (0 = unbounded)")
		queueTimeout = flag.Duration("queue-timeout", 0, "max wait for a transaction slot before shedding the command with BUSY (0 = queue forever)")
		readTimeout  = flag.Duration("read-timeout", 0, "max time a client may take to finish delivering a started frame (0 = unbounded; idle connections are never evicted)")
		writeTimeout = flag.Duration("write-timeout", 0, "max time per response write before the client is evicted (0 = unbounded)")

		walDir        = flag.String("wal-dir", "", "write-ahead-log directory; enables durability (replay on boot, log on commit)")
		walBatch      = flag.Int("wal-fsync-batch", 8, "group-commit batch: fsync once per this many records (1 = per commit, 0 = never fsync)")
		walInterval   = flag.Duration("wal-fsync-interval", time.Millisecond, "max time a commit waits for its group to fill before fsyncing anyway")
		walSegBytes   = flag.Int64("wal-segment-bytes", 0, "log segment rotation threshold in bytes (0 = 64 MiB)")
		walQueue      = flag.Int("wal-append-queue", 0, "per-shard append-pipeline depth: records are encoded outside and written off the shard critical section (0 = default 1024, negative = legacy buffered appends under the shard lock)")
		snapshotEvery = flag.Duration("snapshot-every", time.Minute, "interval between snapshot checkpoints (truncating covered log segments; 0 = never)")
		walIncrSnaps  = flag.Bool("wal-incremental-snapshots", false, "checkpoint by merging only dirtied keys into the previous snapshot instead of rescanning the shard")
		walFullEvery  = flag.Int("wal-full-snapshot-every", 0, "with -wal-incremental-snapshots, force a full-scan snapshot every Nth checkpoint per shard (0 = default 8)")
		walScrubEvery = flag.Duration("wal-scrub-interval", 0, "background scrub period: re-verify sealed log segments and snapshots, quarantining corrupt files (0 = never)")

		chaosSeed     = flag.Uint64("chaos-seed", 1, "fault-injector seed (with any -chaos-* rate > 0)")
		chaosAbort    = flag.Int("chaos-abort", 0, "injected abort rate per injection point, parts per million")
		chaosDelay    = flag.Int("chaos-delay", 0, "injected delay rate per injection point, parts per million")
		chaosPanic    = flag.Int("chaos-panic", 0, "injected panic rate per injection point, parts per million")
		chaosDelayMax = flag.Duration("chaos-delay-max", time.Millisecond, "upper bound on each injected delay")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "stmkvd: ", log.LstdFlags)

	d, err := memtx.ParseDesign(*design)
	if err != nil {
		logger.Fatal(err)
	}
	cm, err := memtx.ParseCMPolicy(*cmPolicy)
	if err != nil {
		logger.Fatal(err)
	}
	cfg := kv.Config{Shards: *shards, Buckets: *buckets, Design: d, CM: cm}
	var store *kv.Store
	if *walDir != "" {
		bootStart := time.Now()
		var stats *kv.RecoveryStats
		store, stats, err = kv.Open(cfg, kv.DurableConfig{
			Dir:                  *walDir,
			FsyncBatch:           *walBatch,
			FsyncInterval:        *walInterval,
			SegmentBytes:         *walSegBytes,
			AppendQueue:          *walQueue,
			SnapshotEvery:        *snapshotEvery,
			IncrementalSnapshots: *walIncrSnaps,
			FullSnapshotEvery:    *walFullEvery,
			ScrubInterval:        *walScrubEvery,
		})
		if err != nil {
			logger.Fatalf("wal recovery: %v", err)
		}
		logger.Printf("wal: recovered %s in %v (%d snapshot pairs, %d records, %d rescued, %d torn tails)",
			*walDir, time.Since(bootStart).Round(time.Millisecond),
			stats.SnapshotPairs, stats.Records, stats.Rescued, stats.TornTails)
	} else {
		store = kv.New(cfg)
	}
	batch := *maxBatch
	if batch <= 0 {
		batch = -1 // flag 0 means off; Config 0 would mean the default
	}
	wbatch := *maxWBatch
	if wbatch <= 0 {
		wbatch = -1
	}
	srv := server.New(store, server.Config{
		MaxInflight:   *maxInflight,
		MaxBatch:      batch,
		MaxWriteBatch: wbatch,
		ErrorLog:      logger,
		CmdDeadline:   *cmdDeadline,
		QueueTimeout:  *queueTimeout,
		ReadTimeout:   *readTimeout,
		WriteTimeout:  *writeTimeout,
	})

	var injector *chaos.Injector
	if *chaosAbort > 0 || *chaosDelay > 0 || *chaosPanic > 0 {
		injector = chaos.New(chaos.Uniform(*chaosSeed,
			uint32(*chaosAbort), uint32(*chaosDelay), uint32(*chaosPanic), *chaosDelayMax))
		chaos.Enable(injector)
		logger.Printf("CHAOS ENABLED: seed=%d abort=%dppm delay=%dppm panic=%dppm delay-max=%v",
			*chaosSeed, *chaosAbort, *chaosDelay, *chaosPanic, *chaosDelayMax)
	}

	if *serveMetrics != "" {
		reg := obs.NewRegistry()
		reg.RegisterSource("kv", store)
		reg.RegisterSource("kvd", srv)
		if m := store.WAL(); m != nil {
			reg.RegisterSource("wal", m)
		}
		if injector != nil {
			reg.RegisterSource("chaos", obs.ChaosSource(injector))
		}
		handler := reg.Handler()
		what := "/metrics and /stats.json"
		if *pprofFlag {
			handler = obs.DebugHandler(handler)
			what += " and /debug/pprof/"
		}
		msrv := &http.Server{Addr: *serveMetrics, Handler: handler}
		go func() {
			if err := msrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				logger.Fatalf("metrics server: %v", err)
			}
		}()
		logger.Printf("serving %s on %s", what, *serveMetrics)
	} else if *pprofFlag {
		logger.Printf("-pprof ignored without -serve-metrics")
	}

	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe(*addr) }()
	logger.Printf("serving on %s (%d shards, %s engine, %s cm)", *addr, store.Shards(), d, cm)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-done:
		logger.Fatalf("serve: %v", err)
	case s := <-sig:
		logger.Printf("%v: draining (max %v)", s, *drainTimeout)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		logger.Printf("drain incomplete: %v", err)
		os.Exit(1)
	}
	if err := <-done; err != server.ErrServerClosed {
		logger.Printf("serve: %v", err)
		os.Exit(1)
	}
	// Every in-flight request has finished; flush and fsync the WAL's pending
	// groups so no acknowledged write rides out the shutdown in a buffer.
	if err := store.Close(); err != nil {
		logger.Printf("wal close: %v", err)
		os.Exit(1)
	}
	st := store.Stats()
	fmt.Fprintf(os.Stderr, "stmkvd: drained cleanly; %d transactions committed\n", st.Commits)
}
