package memtx

import (
	"runtime"

	"memtx/internal/core"
)

// retryWait is the panic value raised by Retry. It never escapes AtomicWait
// or OrElse.
type retryWait struct{}

// Retry abandons the current transaction attempt and, when used under
// AtomicWait, blocks the transaction until another transaction commits an
// update — the composable blocking primitive of transactional memory
// ("composable memory transactions", listed by the paper as the companion
// construct its runtime supports):
//
//	tm.AtomicWait(func(tx *memtx.Tx) error {
//		if queueEmpty(tx) {
//			memtx.Retry(tx) // sleep until something commits, then re-run
//		}
//		return pop(tx)
//	})
//
// Inside Tx.OrElse, Retry instead passes control to the next alternative.
func Retry(tx *Tx) {
	panic(retryWait{})
}

// AtomicWait is Atomic with blocking-retry support: when the body calls
// Retry, the transaction rolls back and the goroutine sleeps until some
// other transaction commits an update, then the body re-executes. The
// wait/wake channel is precise on the direct-update engine (commit
// notifications) and degrades to yield-and-poll on the baseline designs.
func (tm *TM) AtomicWait(body func(tx *Tx) error) error {
	waiter, precise := tm.eng.(*core.Engine)
	for {
		var seen uint64
		if precise {
			seen = waiter.CommitSeq()
		}
		retried := false
		err := func() (err error) {
			defer func() {
				r := recover()
				if r == nil {
					return
				}
				if _, ok := r.(retryWait); ok {
					retried = true
					return
				}
				panic(r)
			}()
			return tm.Atomic(func(tx *Tx) error {
				return body(tx)
			})
		}()
		if !retried {
			return err
		}
		// The attempt was rolled back by Atomic's recovery path (the panic
		// unwound through it); wait for the world to change.
		if precise {
			waiter.WaitCommit(seen)
		} else {
			runtime.Gosched()
		}
	}
}

// OrElse composes alternatives within one transaction: each alternative runs
// against a savepoint; if it calls Retry, its effects (writes, acquisitions,
// allocations) are rolled back and the next alternative runs. If every
// alternative retries, OrElse re-raises the retry so the enclosing
// AtomicWait blocks. The first alternative that returns normally (or with an
// error) decides the result.
//
// OrElse requires the direct-update engine (savepoints are a direct-update
// mechanism); on other designs it panics.
func (tx *Tx) OrElse(alternatives ...func(tx *Tx) error) error {
	ct, ok := tx.tx.(*core.Txn)
	if !ok {
		panic("memtx: OrElse requires the direct-update engine")
	}
	for _, alt := range alternatives {
		sp := ct.Save()
		retried := false
		err := func() (err error) {
			defer func() {
				r := recover()
				if r == nil {
					return
				}
				if _, ok := r.(retryWait); ok {
					retried = true
					return
				}
				panic(r)
			}()
			return alt(tx)
		}()
		if !retried {
			return err
		}
		ct.RollbackTo(sp)
	}
	panic(retryWait{})
}
